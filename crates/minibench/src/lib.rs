//! A drop-in subset of the `criterion` API backed by plain wall-clock
//! sampling. Bench files keep their structure; only the `use criterion::`
//! line changes. Each benchmark runs one warmup iteration and then
//! `sample_size` timed iterations, reporting min / median / mean.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark(name, 20, f);
    }
}

/// A parameterized benchmark label, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the `name/parameter` label.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark under this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{name}", self.group), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark under this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.group, id.label),
            self.sample_size,
            |b| {
                f(b, input);
            },
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once for warmup, then `sample_size` timed times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples (closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{label}: median {} (min {}, mean {}, {} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| (0..100u64).map(|v| v * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke, quick);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("mc", 50).label, "mc/50");
    }
}
