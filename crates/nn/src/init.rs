//! Weight initialization schemes.

use linalg::random::Prng;
use linalg::Matrix;

/// How to initialize a dense layer's weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    /// Good default for sigmoid/tanh layers.
    XavierUniform,
    /// He normal: `N(0, sqrt(2 / fan_in))`. Good default for ReLU layers.
    HeNormal,
    /// All zeros (used in tests and for bias vectors).
    Zeros,
}

impl Init {
    /// Samples a `fan_in x fan_out` weight matrix.
    pub fn weights(self, fan_in: usize, fan_out: usize, rng: &mut Prng) -> Matrix {
        match self {
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
                let data = (0..fan_in * fan_out)
                    .map(|_| rng.uniform_in(-a, a))
                    .collect();
                Matrix::from_vec(fan_in, fan_out, data)
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                let data = (0..fan_in * fan_out)
                    .map(|_| rng.gaussian_with(0.0, std))
                    .collect();
                Matrix::from_vec(fan_in, fan_out, data)
            }
            Init::Zeros => Matrix::zeros(fan_in, fan_out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::stats::{mean, std_dev};

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Prng::seed_from_u64(0);
        let w = Init::XavierUniform.weights(100, 50, &mut rng);
        let a = (6.0 / 150.0f64).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= a));
        // Not all identical.
        assert!(std_dev(w.as_slice()) > 0.0);
    }

    #[test]
    fn he_normal_moments() {
        let mut rng = Prng::seed_from_u64(1);
        let w = Init::HeNormal.weights(200, 200, &mut rng);
        let want_std = (2.0 / 200.0f64).sqrt();
        assert!(mean(w.as_slice()).abs() < 0.01);
        assert!((std_dev(w.as_slice()) - want_std).abs() < 0.01);
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = Prng::seed_from_u64(2);
        let w = Init::Zeros.weights(3, 4, &mut rng);
        assert!(w.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::HeNormal.weights(10, 10, &mut Prng::seed_from_u64(9));
        let b = Init::HeNormal.weights(10, 10, &mut Prng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
