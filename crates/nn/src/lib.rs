//! A minimal feed-forward neural-network framework.
//!
//! The rDRP paper's models (DRP itself, Direct Rank, TARNet, DragonNet,
//! OffsetNet, SNet) are all small multilayer perceptrons — one hidden layer
//! with 10–100 units in the paper's setup. This crate implements exactly
//! what those models need and nothing more:
//!
//! * [`Dense`] layers with manual backprop (no autograd — the
//!   computation graphs here are static chains).
//! * [`Dropout`] with three execution modes, including the
//!   **Monte-Carlo-active** mode that rDRP uses at *inference* time to
//!   estimate the standard deviation of its point predictions
//!   ([`mc::mc_predict`]).
//! * Custom training objectives via the [`Objective`] trait: the DRP loss
//!   (Eq. 2 of the paper) and the Direct Rank loss need per-sample
//!   gradients that depend on treatment labels and batch-level
//!   normalization, so objectives receive the batch's dataset row indices.
//! * [`Sgd`]/[`Adam`] optimizers and a minibatch [`trainer`].
//! * [`MultiHeadNet`] — a shared trunk with several heads, for the
//!   TARNet/DragonNet/OffsetNet/SNet baselines.
//!
//! Everything is deterministic given a [`linalg::random::Prng`] seed.
//!
//! Fallibility: the [`trainer`] returns typed [`TrainError`]s instead of
//! panicking, and guards every epoch with divergence sentinels plus a
//! checkpoint-rollback/LR-halving retry loop (see [`trainer::train`]).

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod activation;
pub mod dense;
pub mod dropout;
pub mod error;
pub mod init;
pub mod karm;
pub mod mc;
pub mod mlp;
pub mod multihead;
pub mod objective;
pub mod optimizer;
pub mod trainer;

pub use activation::Activation;
pub use dense::Dense;
pub use dropout::{Dropout, Mode};
pub use error::{DivergenceCause, TrainError};
pub use karm::{build_karm_net, train_arm_heads, KArmTrainConfig};
pub use mc::{mc_predict, mc_predict_map, McStats};
pub use mlp::{BlockWorkspace, Mlp, Workspace};
pub use multihead::MultiHeadNet;
pub use objective::{BceObjective, MseObjective, Objective, PinballObjective};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use trainer::{train, Recovery, TrainConfig, TrainReport};
