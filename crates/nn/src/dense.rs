//! Fully connected layer with manual backpropagation.

use crate::activation::Activation;
use crate::init::Init;
use linalg::random::Prng;
use linalg::Matrix;
use tinyjson::{FromJson, JsonError, ToJson, Value};

/// A dense (fully connected) layer `y = f(x W + b)`.
///
/// The layer caches its forward inputs and pre-activations so a subsequent
/// [`Dense::backward`] call can compute parameter and input gradients.
/// Gradients are *accumulated* into `grad_w`/`grad_b` and cleared by
/// [`Dense::zero_grad`], which lets multi-head networks sum gradient
/// contributions from several heads before an optimizer step.
///
/// Inference never touches the caches: [`Dense::infer_into`] is `&self`
/// and writes into a caller-provided buffer, so a trained layer can be
/// shared across threads without cloning.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `fan_in x fan_out`.
    w: Matrix,
    /// Bias vector, length `fan_out`.
    b: Vec<f64>,
    activation: Activation,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    // Forward caches (input batch and pre-activation batch).
    cache_x: Option<Matrix>,
    cache_z: Option<Matrix>,
}

/// Serialized form of a [`Dense`] layer: weights, biases, activation —
/// gradients and forward caches are transient training state.
struct DenseSpec {
    w: Matrix,
    b: Vec<f64>,
    activation: Activation,
}

tinyjson::json_struct!(DenseSpec { w, b, activation });

impl ToJson for Dense {
    fn to_json(&self) -> Value {
        DenseSpec {
            w: self.w.clone(),
            b: self.b.clone(),
            activation: self.activation,
        }
        .to_json()
    }
}

impl FromJson for Dense {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(DenseSpec::from_json(v)?.into())
    }
}

impl From<DenseSpec> for Dense {
    fn from(spec: DenseSpec) -> Self {
        let grad_w = Matrix::zeros(spec.w.rows(), spec.w.cols());
        let grad_b = vec![0.0; spec.b.len()];
        Dense {
            w: spec.w,
            b: spec.b,
            activation: spec.activation,
            grad_w,
            grad_b,
            cache_x: None,
            cache_z: None,
        }
    }
}

impl From<Dense> for DenseSpec {
    fn from(d: Dense) -> Self {
        DenseSpec {
            w: d.w,
            b: d.b,
            activation: d.activation,
        }
    }
}

impl Dense {
    /// Creates a dense layer with the given fan-in/out, activation, and
    /// weight initialization. Biases start at zero.
    pub fn new(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        init: Init,
        rng: &mut Prng,
    ) -> Self {
        Dense {
            w: init.weights(fan_in, fan_out, rng),
            b: vec![0.0; fan_out],
            activation,
            grad_w: Matrix::zeros(fan_in, fan_out),
            grad_b: vec![0.0; fan_out],
            cache_x: None,
            cache_z: None,
        }
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass on a batch (rows are samples).
    ///
    /// When `cache` is true the inputs and pre-activations are retained
    /// for [`Dense::backward`]; inference passes should use `cache = false`
    /// to avoid the allocation.
    #[allow(clippy::expect_used)] // shape invariants upheld by construction
    pub fn forward(&mut self, x: &Matrix, cache: bool) -> Matrix {
        let z = x
            .matmul(&self.w)
            .expect("Dense::forward: input width must equal fan_in")
            .add_row_vector(&self.b)
            .expect("bias length matches fan_out by construction");
        let a = z.map(|v| self.activation.apply(v));
        if cache {
            self.cache_x = Some(x.clone());
            self.cache_z = Some(z);
        }
        a
    }

    /// Immutable inference pass: computes `f(x W + b)` into `out`,
    /// reusing `out`'s allocation. Performs the same floating-point
    /// operations in the same order as [`Dense::forward`], so results are
    /// bitwise identical; unlike `forward` it never writes caches, which
    /// makes it safe to call concurrently from many threads.
    #[allow(clippy::expect_used)] // shape invariants upheld by construction
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out)
            .expect("Dense::infer_into: input width must equal fan_in");
        out.add_row_vector_mut(&self.b)
            .expect("bias length matches fan_out by construction");
        out.map_mut(|v| self.activation.apply(v));
    }

    /// Backward pass: given `dL/dy` for the batch of the latest cached
    /// forward call, accumulates `dL/dW`, `dL/db` and returns `dL/dx`.
    ///
    /// # Panics
    /// Panics if no cached forward pass is available.
    #[allow(clippy::expect_used)] // shape invariants upheld by construction
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .as_ref()
            .expect("Dense::backward: call forward(cache=true) first");
        let z = self.cache_z.as_ref().expect("cache_z set with cache_x");
        assert_eq!(
            grad_out.shape(),
            (x.rows(), self.w.cols()),
            "Dense::backward: gradient shape mismatch"
        );
        // delta = grad_out ⊙ f'(z)
        let fprime = z.map(|v| self.activation.derivative(v));
        let delta = grad_out
            .hadamard(&fprime)
            .expect("shapes equal by construction");
        // dW += x^T delta ; db += column sums of delta
        let gw = x
            .transpose()
            .matmul(&delta)
            .expect("x^T (d x n) times delta (n x m)");
        self.grad_w = self
            .grad_w
            .add(&gw)
            .expect("accumulator has fixed weight shape");
        for (acc, v) in self.grad_b.iter_mut().zip(delta.col_sums()) {
            *acc += v;
        }
        // dX = delta W^T
        delta
            .matmul(&self.w.transpose())
            .expect("delta (n x m) times W^T (m x d)")
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w = Matrix::zeros(self.w.rows(), self.w.cols());
        self.grad_b.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Drops the forward caches (e.g. before storing the model).
    pub fn clear_cache(&mut self) {
        self.cache_x = None;
        self.cache_z = None;
    }

    /// Parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Visits `(params, grads)` for the weight matrix and bias vector.
    /// Used by optimizers; the visitation order is stable.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut [f64], &[f64])) {
        // Safety note: we need simultaneous access to params and grads of
        // the same struct; split via raw parts is avoided by cloning the
        // (small) gradient buffers.
        let gw = self.grad_w.as_slice().to_vec();
        f(self.w.as_mut_slice(), &gw);
        let gb = self.grad_b.clone();
        f(&mut self.b, &gb);
    }

    /// Read-only view of the weights (for tests and diagnostics).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Read-only view of the biases.
    pub fn biases(&self) -> &[f64] {
        &self.b
    }

    /// Read-only view of the accumulated weight gradient.
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(fan_in: usize, fan_out: usize, act: Activation) -> Dense {
        let mut rng = Prng::seed_from_u64(11);
        Dense::new(fan_in, fan_out, act, Init::XavierUniform, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let mut l = layer(3, 2, Activation::Identity);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, -1.0, 0.5]]);
        let y = l.forward(&x, false);
        assert_eq!(y.shape(), (2, 2));
    }

    #[test]
    fn identity_layer_is_affine() {
        let mut rng = Prng::seed_from_u64(3);
        let mut l = Dense::new(2, 1, Activation::Identity, Init::XavierUniform, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]]);
        let y = l.forward(&x, false);
        let w = l.weights();
        // Row 2 is the bias alone; rows 0/1 add one weight each.
        assert!((y.get(2, 0) - l.biases()[0]).abs() < 1e-12);
        assert!((y.get(0, 0) - (w.get(0, 0) + l.biases()[0])).abs() < 1e-12);
        assert!((y.get(1, 0) - (w.get(1, 0) + l.biases()[0])).abs() < 1e-12);
    }

    /// Gradient check against central finite differences, for each
    /// activation that is differentiable everywhere we probe.
    #[test]
    fn backward_matches_finite_differences() {
        for act in [
            Activation::Identity,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Elu,
            Activation::Softplus,
        ] {
            let mut l = layer(4, 3, act);
            let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0, 0.1], vec![1.5, 0.3, -0.7, -0.2]]);
            // Scalar objective: L = sum(y). So dL/dy = ones.
            let ones = Matrix::full(2, 3, 1.0);
            l.zero_grad();
            let _ = l.forward(&x, true);
            let grad_x = l.backward(&ones);

            let eps = 1e-6;
            // Check a few weight gradients.
            for &(r, c) in &[(0usize, 0usize), (2, 1), (3, 2)] {
                let mut lp = l.clone();
                let mut lm = l.clone();
                lp.w.set(r, c, l.w.get(r, c) + eps);
                lm.w.set(r, c, l.w.get(r, c) - eps);
                let fp: f64 = lp.forward(&x, false).as_slice().iter().sum();
                let fm: f64 = lm.forward(&x, false).as_slice().iter().sum();
                let numeric = (fp - fm) / (2.0 * eps);
                let analytic = l.grad_w.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "{act:?} dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            // Check an input gradient.
            let mut xp = x.clone();
            xp.set(0, 1, x.get(0, 1) + eps);
            let mut xm = x.clone();
            xm.set(0, 1, x.get(0, 1) - eps);
            let fp: f64 = l.clone().forward(&xp, false).as_slice().iter().sum();
            let fm: f64 = l.clone().forward(&xm, false).as_slice().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grad_x.get(0, 1)).abs() < 1e-4, "{act:?} dX[0,1]");
        }
    }

    #[test]
    fn infer_into_matches_forward_bitwise() {
        let mut l = layer(4, 3, Activation::Elu);
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0, 0.1], vec![1.5, 0.3, -0.7, -0.2]]);
        let want = l.forward(&x, false);
        let mut out = Matrix::full(1, 1, f64::NAN); // stale scratch
        l.infer_into(&x, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = layer(2, 1, Activation::Identity);
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let g = Matrix::full(1, 1, 1.0);
        l.zero_grad();
        let _ = l.forward(&x, true);
        let _ = l.backward(&g);
        let once = l.grad_w.clone();
        let _ = l.forward(&x, true);
        let _ = l.backward(&g);
        let twice = l.grad_w.clone();
        assert_eq!(twice, once.scale(2.0));
        l.zero_grad();
        assert!(l.grad_w.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "forward(cache=true)")]
    fn backward_without_forward_panics() {
        let mut l = layer(2, 1, Activation::Identity);
        l.backward(&Matrix::zeros(1, 1));
    }

    #[test]
    fn param_count() {
        let l = layer(5, 3, Activation::Relu);
        assert_eq!(l.param_count(), 5 * 3 + 3);
    }
}
