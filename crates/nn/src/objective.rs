//! Training objectives.
//!
//! A network's output for a minibatch is a vector of scalars (one per
//! sample); the objective maps those predictions plus the batch's dataset
//! row indices to a loss value and per-sample gradients `dL/d(pred)`.
//!
//! Passing *row indices* (rather than label slices) is deliberate: the DRP
//! loss (Eq. 2) and the Direct Rank loss normalize treated and control
//! samples separately **within the batch** (`1/N1`, `1/N0`), so an
//! objective must see which rows it got, not just their labels.

/// A differentiable training objective over scalar predictions.
pub trait Objective {
    /// Returns `(loss, dL/d_pred)` for the batch.
    ///
    /// `preds[i]` is the network output for dataset row `rows[i]`.
    fn loss_and_grad(&self, preds: &[f64], rows: &[usize]) -> (f64, Vec<f64>);

    /// Loss value only (defaults to discarding the gradient).
    fn loss(&self, preds: &[f64], rows: &[usize]) -> f64 {
        self.loss_and_grad(preds, rows).0
    }
}

/// Mean squared error against fixed targets: `L = mean((pred - y)^2)`.
#[derive(Debug, Clone)]
pub struct MseObjective {
    targets: Vec<f64>,
}

impl MseObjective {
    /// Creates an MSE objective over the full dataset's targets.
    pub fn new(targets: Vec<f64>) -> Self {
        MseObjective { targets }
    }
}

impl Objective for MseObjective {
    fn loss_and_grad(&self, preds: &[f64], rows: &[usize]) -> (f64, Vec<f64>) {
        assert_eq!(preds.len(), rows.len(), "MSE: preds/rows length mismatch");
        let n = preds.len().max(1) as f64;
        let mut loss = 0.0;
        let mut grad = Vec::with_capacity(preds.len());
        for (&p, &r) in preds.iter().zip(rows) {
            let e = p - self.targets[r];
            loss += e * e;
            grad.push(2.0 * e / n);
        }
        (loss / n, grad)
    }
}

/// Binary cross entropy on a *logit* prediction against 0/1 targets:
/// `L = mean(softplus(s) - y * s)` — the numerically stable form of
/// `-[y ln σ(s) + (1-y) ln(1-σ(s))]`.
#[derive(Debug, Clone)]
pub struct BceObjective {
    targets: Vec<f64>,
}

impl BceObjective {
    /// Creates a BCE objective over the full dataset's 0/1 targets.
    pub fn new(targets: Vec<f64>) -> Self {
        BceObjective { targets }
    }
}

impl Objective for BceObjective {
    fn loss_and_grad(&self, preds: &[f64], rows: &[usize]) -> (f64, Vec<f64>) {
        assert_eq!(preds.len(), rows.len(), "BCE: preds/rows length mismatch");
        let n = preds.len().max(1) as f64;
        let mut loss = 0.0;
        let mut grad = Vec::with_capacity(preds.len());
        for (&s, &r) in preds.iter().zip(rows) {
            let y = self.targets[r];
            loss += linalg::vector::softplus(s) - y * s;
            grad.push((linalg::vector::sigmoid(s) - y) / n);
        }
        (loss / n, grad)
    }
}

/// Pinball (quantile) loss at level `q`:
/// `L = mean( max(q·e, (q−1)·e) )` with `e = y − pred`.
///
/// Training a network with this objective makes its output an estimate of
/// the conditional `q`-quantile — the ingredient Conformalized Quantile
/// Regression needs. (The rDRP paper explains it cannot rewrite the DRP
/// loss as a pinball loss, which is why rDRP uses scalar-uncertainty
/// conformalization instead; this objective exists so the repository can
/// demonstrate the CQR alternative on problems that *do* admit it.)
#[derive(Debug, Clone)]
pub struct PinballObjective {
    targets: Vec<f64>,
    quantile: f64,
}

impl PinballObjective {
    /// Creates a pinball objective at quantile level `q ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics when `q` is outside the open unit interval.
    pub fn new(targets: Vec<f64>, quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "PinballObjective: quantile must be in (0,1), got {quantile}"
        );
        PinballObjective { targets, quantile }
    }
}

impl Objective for PinballObjective {
    fn loss_and_grad(&self, preds: &[f64], rows: &[usize]) -> (f64, Vec<f64>) {
        assert_eq!(
            preds.len(),
            rows.len(),
            "pinball: preds/rows length mismatch"
        );
        let n = preds.len().max(1) as f64;
        let q = self.quantile;
        let mut loss = 0.0;
        let mut grad = Vec::with_capacity(preds.len());
        for (&p, &r) in preds.iter().zip(rows) {
            let e = self.targets[r] - p;
            if e >= 0.0 {
                loss += q * e;
                grad.push(-q / n);
            } else {
                loss += (q - 1.0) * e;
                grad.push((1.0 - q) / n);
            }
        }
        (loss / n, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(obj: &dyn Objective, preds: &[f64], rows: &[usize]) {
        let (_, grad) = obj.loss_and_grad(preds, rows);
        let eps = 1e-6;
        for i in 0..preds.len() {
            let mut pp = preds.to_vec();
            pp[i] += eps;
            let mut pm = preds.to_vec();
            pm[i] -= eps;
            let numeric = (obj.loss(&pp, rows) - obj.loss(&pm, rows)) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-6,
                "grad[{i}]: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn mse_value_and_grad() {
        let obj = MseObjective::new(vec![1.0, 2.0, 3.0]);
        let preds = [1.5, 2.0, 2.0];
        let rows = [0, 1, 2];
        let (loss, grad) = obj.loss_and_grad(&preds, &rows);
        assert!((loss - (0.25 + 0.0 + 1.0) / 3.0).abs() < 1e-12);
        assert!((grad[0] - 2.0 * 0.5 / 3.0).abs() < 1e-12);
        finite_diff_check(&obj, &preds, &rows);
    }

    #[test]
    fn mse_respects_row_indices() {
        let obj = MseObjective::new(vec![0.0, 10.0]);
        let (loss, _) = obj.loss_and_grad(&[10.0], &[1]);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn bce_value_and_grad() {
        let obj = BceObjective::new(vec![1.0, 0.0]);
        let preds = [2.0, -1.0];
        let rows = [0, 1];
        let (loss, _) = obj.loss_and_grad(&preds, &rows);
        // Manual: softplus(2) - 2 + softplus(-1) over 2.
        let want = (linalg::vector::softplus(2.0) - 2.0 + linalg::vector::softplus(-1.0)) / 2.0;
        assert!((loss - want).abs() < 1e-12);
        finite_diff_check(&obj, &preds, &rows);
    }

    #[test]
    fn bce_minimized_by_confident_correct_logits() {
        let obj = BceObjective::new(vec![1.0]);
        assert!(obj.loss(&[5.0], &[0]) < obj.loss(&[0.0], &[0]));
        assert!(obj.loss(&[0.0], &[0]) < obj.loss(&[-5.0], &[0]));
    }

    #[test]
    fn pinball_value_and_grad() {
        let obj = PinballObjective::new(vec![1.0, 1.0], 0.9);
        // Under-prediction (e > 0) is punished 9x harder than over.
        let under = obj.loss(&[0.0], &[0]); // e = 1, loss = 0.9
        let over = obj.loss(&[2.0], &[1]); // e = -1, loss = 0.1
        assert!((under - 0.9).abs() < 1e-12);
        assert!((over - 0.1).abs() < 1e-12);
        finite_diff_check(&obj, &[0.3, 1.7], &[0, 1]);
    }

    #[test]
    fn pinball_minimizer_is_the_empirical_quantile() {
        // For constant predictions over a sample, the pinball loss over a
        // grid of candidate constants is minimized at the q-quantile.
        let targets: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let rows: Vec<usize> = (0..100).collect();
        let obj = PinballObjective::new(targets, 0.8);
        let loss_at = |c: f64| obj.loss(&vec![c; 100], &rows);
        let mut best = (f64::INFINITY, 0.0);
        for k in 0..=100 {
            let c = k as f64;
            let l = loss_at(c);
            if l < best.0 {
                best = (l, c);
            }
        }
        assert!((best.1 - 80.0).abs() <= 1.0, "minimizer {}", best.1);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn pinball_bad_quantile_panics() {
        let _ = PinballObjective::new(vec![1.0], 1.0);
    }
}
