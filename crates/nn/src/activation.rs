//! Activation functions with analytic derivatives.

/// Elementwise activation applied after a dense layer's affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Exponential linear unit with `alpha = 1`.
    Elu,
    /// `ln(1 + e^x)` — smooth, strictly positive.
    Softplus,
}

tinyjson::json_unit_enum!(Activation {
    Identity,
    Sigmoid,
    Relu,
    Tanh,
    Elu,
    Softplus
});

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => linalg::vector::sigmoid(x),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Elu => {
                if x >= 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            }
            Activation::Softplus => linalg::vector::softplus(x),
        }
    }

    /// Derivative `f'(x)` expressed in terms of the pre-activation `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Sigmoid => {
                let s = linalg::vector::sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Elu => {
                if x >= 0.0 {
                    1.0
                } else {
                    x.exp()
                }
            }
            Activation::Softplus => linalg::vector::sigmoid(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 6] = [
        Activation::Identity,
        Activation::Sigmoid,
        Activation::Relu,
        Activation::Tanh,
        Activation::Elu,
        Activation::Softplus,
    ];

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in ALL {
            for &x in &[-2.0, -0.5, 0.3, 1.7, 4.0] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn fixed_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        assert!((Activation::Elu.apply(-30.0) + 1.0).abs() < 1e-10);
        assert!(Activation::Softplus.apply(-50.0) > 0.0);
    }

    #[test]
    fn relu_derivative_is_subgradient_zero_at_origin() {
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1e-9), 1.0);
    }
}
