//! Activation functions with analytic derivatives.

/// Elementwise activation applied after a dense layer's affine map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Exponential linear unit with `alpha = 1`.
    Elu,
    /// `ln(1 + e^x)` — smooth, strictly positive.
    Softplus,
}

tinyjson::json_unit_enum!(Activation {
    Identity,
    Sigmoid,
    Relu,
    Tanh,
    Elu,
    Softplus
});

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => linalg::vector::sigmoid(x),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Elu => {
                if x >= 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            }
            Activation::Softplus => linalg::vector::softplus(x),
        }
    }

    /// `f32` twin of [`Activation::apply`] for the block inference
    /// kernels. Identical in every dispatch mode (pure `f32` math, no
    /// SIMD divergence), but *not* bit-identical to applying the `f64`
    /// version and rounding — the per-layer drift is part of the block
    /// path's tolerance contract (DESIGN.md §11).
    #[inline]
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => {
                if x >= 0.0 {
                    let e = (-x).exp();
                    1.0 / (1.0 + e)
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            }
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Elu => {
                if x >= 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            }
            Activation::Softplus => {
                if x > 30.0 {
                    x
                } else if x < -30.0 {
                    x.exp()
                } else {
                    x.exp().ln_1p()
                }
            }
        }
    }

    /// Applies the activation over one column slice of the block path.
    ///
    /// ELU routes to the vectorized kernel
    /// ([`linalg::block::elu_in_place`]) — a polynomial `expf` mirrored
    /// bitwise between dispatch modes, accurate to a few f32 ulp against
    /// [`Activation::apply_f32`]'s libm formulation. Every other
    /// activation applies [`Activation::apply_f32`] elementwise, which
    /// never consults `dispatch`; either way the result is bitwise
    /// identical across [`Dispatch`] modes.
    ///
    /// [`Dispatch`]: linalg::block::Dispatch
    pub fn apply_block_slice(self, xs: &mut [f32], dispatch: linalg::block::Dispatch) {
        match self {
            Activation::Identity => {}
            Activation::Elu => linalg::block::elu_in_place(xs, dispatch),
            other => {
                for v in xs {
                    *v = other.apply_f32(*v);
                }
            }
        }
    }

    /// Derivative `f'(x)` expressed in terms of the pre-activation `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Sigmoid => {
                let s = linalg::vector::sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Elu => {
                if x >= 0.0 {
                    1.0
                } else {
                    x.exp()
                }
            }
            Activation::Softplus => linalg::vector::sigmoid(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 6] = [
        Activation::Identity,
        Activation::Sigmoid,
        Activation::Relu,
        Activation::Tanh,
        Activation::Elu,
        Activation::Softplus,
    ];

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in ALL {
            for &x in &[-2.0, -0.5, 0.3, 1.7, 4.0] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn fixed_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
        assert!((Activation::Elu.apply(-30.0) + 1.0).abs() < 1e-10);
        assert!(Activation::Softplus.apply(-50.0) > 0.0);
    }

    #[test]
    fn f32_twin_tracks_f64_activation() {
        for act in ALL {
            for &x in &[-31.0f64, -4.0, -0.7, 0.0, 0.3, 1.7, 31.0] {
                let want = act.apply(x);
                let got = f64::from(act.apply_f32(x as f32));
                assert!(
                    (got - want).abs() < 1e-6 * want.abs().max(1.0),
                    "{act:?} at {x}: f32 {got} vs f64 {want}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_is_subgradient_zero_at_origin() {
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1e-9), 1.0);
    }
}
