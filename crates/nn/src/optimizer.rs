//! First-order optimizers.
//!
//! Optimizers keep per-parameter-tensor state keyed by a stable visitation
//! index: the caller (the trainer) walks the network's parameter tensors
//! in a fixed order and hands each `(params, grads)` pair to
//! [`Optimizer::update`].

/// A stateful first-order optimizer.
pub trait Optimizer {
    /// Applies one update step to a parameter tensor.
    ///
    /// `tensor_id` identifies the tensor across steps (the trainer visits
    /// tensors in a stable order and numbers them 0, 1, 2, ...).
    fn update(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]);

    /// Marks the end of an optimization step (after every tensor was
    /// visited once). Default: no-op.
    fn end_step(&mut self) {}
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum coefficient `momentum` (typically 0.9).
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    fn state(&mut self, id: usize, len: usize) -> &mut Vec<f64> {
        while self.velocity.len() <= id {
            self.velocity.push(Vec::new());
        }
        let v = &mut self.velocity[id];
        if v.len() != len {
            *v = vec![0.0; len];
        }
        v
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "SGD: param/grad length mismatch");
        let lr = self.lr;
        let momentum = self.momentum;
        if momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= lr * g;
            }
        } else {
            let v = self.state(tensor_id, params.len());
            for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
                *vi = momentum * *vi + g;
                *p -= lr * *vi;
            }
        }
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Adam with the canonical defaults `beta1=0.9, beta2=0.999, eps=1e-8`.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn state(store: &mut Vec<Vec<f64>>, id: usize, len: usize) -> &mut Vec<f64> {
        while store.len() <= id {
            store.push(Vec::new());
        }
        let s = &mut store[id];
        if s.len() != len {
            *s = vec![0.0; len];
        }
        s
    }
}

impl Optimizer for Adam {
    fn update(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "Adam: param/grad length mismatch"
        );
        // `t` is advanced in end_step; during the first step t == 0, so use
        // t + 1 for bias correction.
        let t = (self.t + 1) as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (beta1, beta2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let m = Self::state(&mut self.m, tensor_id, params.len());
        // Borrow v after m: separate stores, so no aliasing.
        let v = Self::state(&mut self.v, tensor_id, params.len());
        for (((p, &g), mi), vi) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = beta1 * *mi + (1.0 - beta1) * g;
            *vi = beta2 * *vi + (1.0 - beta2) * g * g;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
        }
    }

    fn end_step(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 with each optimizer.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &g);
            opt.end_step();
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = minimize(&mut opt, 400);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimize(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step has magnitude ~lr.
        let mut opt = Adam::new(0.1);
        let mut x = [0.0f64];
        opt.update(0, &mut x, &[42.0]);
        assert!((x[0] + 0.1).abs() < 1e-6, "x = {}", x[0]);
    }

    #[test]
    fn optimizers_track_separate_tensors() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0f64];
        let mut b = [0.0f64];
        for _ in 0..100 {
            let ga = [2.0 * (a[0] - 1.0)];
            let gb = [2.0 * (b[0] + 2.0)];
            opt.update(0, &mut a, &ga);
            opt.update(1, &mut b, &gb);
            opt.end_step();
        }
        assert!((a[0] - 1.0).abs() < 0.05, "a = {}", a[0]);
        assert!((b[0] + 2.0).abs() < 0.05, "b = {}", b[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Sgd::new(0.1);
        let mut x = [0.0f64; 2];
        opt.update(0, &mut x, &[1.0]);
    }
}
