//! Sequential multilayer perceptron.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::dropout::{Dropout, Mode};
use crate::init::Init;
use linalg::block::{Dispatch, FeatureBlock, PackedGemm};
use linalg::random::Prng;
use linalg::Matrix;
use tinyjson::{FromJson, JsonError, ToJson, Value};

/// One layer of an [`Mlp`].
#[derive(Debug, Clone)]
pub enum Layer {
    /// Fully connected layer.
    Dense(Dense),
    /// Dropout layer.
    Dropout(Dropout),
}

impl ToJson for Layer {
    fn to_json(&self) -> Value {
        let (tag, inner) = match self {
            Layer::Dense(d) => ("Dense", d.to_json()),
            Layer::Dropout(d) => ("Dropout", d.to_json()),
        };
        Value::Obj(vec![(tag.to_string(), inner)])
    }
}

impl FromJson for Layer {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_obj()? {
            [(tag, inner)] if tag == "Dense" => Ok(Layer::Dense(Dense::from_json(inner)?)),
            [(tag, inner)] if tag == "Dropout" => Ok(Layer::Dropout(Dropout::from_json(inner)?)),
            _ => Err(JsonError::msg(
                "Layer: expected {\"Dense\": ...} or {\"Dropout\": ...}",
            )),
        }
    }
}

/// Reusable scratch buffers for the allocation-free inference path.
///
/// [`Mlp::infer`] ping-pongs layer activations between two internal
/// matrices, growing them on first use and reusing the allocations on
/// every later call. Keep one workspace per thread (they are cheap when
/// empty) and pass it to every inference call on that thread.
#[derive(Debug)]
pub struct Workspace {
    bufs: [Matrix; 2],
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace {
            bufs: [Matrix::zeros(0, 0), Matrix::zeros(0, 0)],
        }
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

/// Scratch for the columnar `f32` inference fast path
/// ([`Mlp::infer_block`]): two ping-pong [`FeatureBlock`]s whose
/// allocations are reused across calls, mirroring [`Workspace`] for the
/// scalar path.
#[derive(Debug)]
pub struct BlockWorkspace {
    bufs: [FeatureBlock; 2],
}

impl BlockWorkspace {
    /// Creates an empty workspace; blocks grow on first use.
    pub fn new() -> Self {
        BlockWorkspace {
            bufs: [FeatureBlock::zeros(0, 0), FeatureBlock::zeros(0, 0)],
        }
    }
}

impl Default for BlockWorkspace {
    fn default() -> Self {
        BlockWorkspace::new()
    }
}

/// A sequential stack of dense and dropout layers.
///
/// This is the shape of every network in the paper: DRP is
/// `Dense(d, h, elu) -> Dropout(p) -> Dense(h, 1, identity)` with the final
/// sigmoid folded into the DRP loss (the loss consumes the raw score `ŝ`).
///
/// Training state (backprop caches, gradients) lives inside the layers
/// and is only touched by [`Mlp::forward`]/[`Mlp::backward`]. Scoring
/// goes through the immutable [`Mlp::infer`] path, which writes into a
/// caller-provided [`Workspace`] instead — so a trained network is shared
/// freely across threads with zero clones.
#[derive(Debug, Clone)]
pub struct Mlp {
    input_dim: usize,
    layers: Vec<Layer>,
}

tinyjson::json_struct!(Mlp { input_dim, layers });

/// Builder for [`Mlp`].
pub struct MlpBuilder {
    input_dim: usize,
    plan: Vec<PlanItem>,
}

enum PlanItem {
    Dense {
        units: usize,
        activation: Activation,
        init: Init,
    },
    Dropout(f64),
}

impl MlpBuilder {
    /// Adds a dense layer with Xavier-uniform initialization.
    pub fn dense(mut self, units: usize, activation: Activation) -> Self {
        self.plan.push(PlanItem::Dense {
            units,
            activation,
            init: Init::XavierUniform,
        });
        self
    }

    /// Adds a dense layer with an explicit initialization scheme.
    pub fn dense_init(mut self, units: usize, activation: Activation, init: Init) -> Self {
        self.plan.push(PlanItem::Dense {
            units,
            activation,
            init,
        });
        self
    }

    /// Adds a dropout layer with drop probability `p`.
    pub fn dropout(mut self, p: f64) -> Self {
        self.plan.push(PlanItem::Dropout(p));
        self
    }

    /// Materializes the network, sampling initial weights from `rng`.
    ///
    /// # Panics
    /// Panics if the plan contains no dense layer.
    pub fn build(self, rng: &mut Prng) -> Mlp {
        let mut layers = Vec::with_capacity(self.plan.len());
        let mut current_dim = self.input_dim;
        let mut has_dense = false;
        for item in self.plan {
            match item {
                PlanItem::Dense {
                    units,
                    activation,
                    init,
                } => {
                    layers.push(Layer::Dense(Dense::new(
                        current_dim,
                        units,
                        activation,
                        init,
                        rng,
                    )));
                    current_dim = units;
                    has_dense = true;
                }
                PlanItem::Dropout(p) => layers.push(Layer::Dropout(Dropout::new(p))),
            }
        }
        assert!(has_dense, "an Mlp needs at least one dense layer");
        Mlp {
            input_dim: self.input_dim,
            layers,
        }
    }
}

impl Mlp {
    /// Starts building a network that consumes `input_dim` features.
    pub fn builder(input_dim: usize) -> MlpBuilder {
        MlpBuilder {
            input_dim,
            plan: Vec::new(),
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension (fan-out of the last dense layer).
    #[allow(clippy::expect_used)] // shape invariants upheld by construction
    pub fn output_dim(&self) -> usize {
        self.layers
            .iter()
            .rev()
            .find_map(|l| match l {
                Layer::Dense(d) => Some(d.fan_out()),
                Layer::Dropout(_) => None,
            })
            .expect("built Mlp always has a dense layer")
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => d.param_count(),
                Layer::Dropout(_) => 0,
            })
            .sum()
    }

    /// Forward pass on a batch (rows are samples).
    ///
    /// In [`Mode::Train`] every layer caches what backprop needs; in the
    /// other modes no caches are written.
    pub fn forward(&mut self, x: &Matrix, mode: Mode, rng: &mut Prng) -> Matrix {
        assert_eq!(
            x.cols(),
            self.input_dim,
            "Mlp::forward: expected {} features, got {}",
            self.input_dim,
            x.cols()
        );
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = match layer {
                Layer::Dense(d) => d.forward(&h, mode == Mode::Train),
                Layer::Dropout(d) => d.forward(&h, mode, rng),
            };
        }
        h
    }

    /// Immutable inference pass on a batch, writing every intermediate
    /// activation into `ws` instead of allocating or mutating layer
    /// caches. Returns a reference to the output batch inside `ws`.
    ///
    /// Performs the same floating-point operations in the same order as
    /// [`Mlp::forward`] and consumes RNG draws identically, so for equal
    /// inputs and RNG state the result is bitwise identical.
    ///
    /// # Panics
    /// Panics in [`Mode::Train`] (training must cache activations — use
    /// `forward`) or when `x` has the wrong number of features.
    pub fn infer<'ws>(
        &self,
        x: &Matrix,
        mode: Mode,
        rng: &mut Prng,
        ws: &'ws mut Workspace,
    ) -> &'ws Matrix {
        assert!(
            mode != Mode::Train,
            "Mlp::infer: Train mode requires forward"
        );
        assert_eq!(
            x.cols(),
            self.input_dim,
            "Mlp::forward: expected {} features, got {}",
            self.input_dim,
            x.cols()
        );
        let (left, right) = ws.bufs.split_at_mut(1);
        let mut cur: &mut Matrix = &mut left[0];
        let mut nxt: &mut Matrix = &mut right[0];
        // `cur` holds the running activations once the first dense layer
        // has written them; before that the input batch is read directly.
        let mut started = false;
        for layer in &self.layers {
            match layer {
                Layer::Dense(d) => {
                    let input: &Matrix = if started { cur } else { x };
                    d.infer_into(input, nxt);
                    std::mem::swap(&mut cur, &mut nxt);
                    started = true;
                }
                Layer::Dropout(d) => {
                    if !started {
                        cur.clone_from(x);
                        started = true;
                    }
                    d.infer_inplace(cur, mode, rng);
                }
            }
        }
        assert!(started, "built Mlp always has a dense layer");
        cur
    }

    /// Convenience: immutable [`Mode::Eval`] inference returning the first
    /// output column as a vector (all networks in this reproduction that
    /// feed scalar losses have a single output unit).
    ///
    /// Large batches are scored in parallel row chunks — each worker runs
    /// the same per-row arithmetic on its slice of rows, so the result is
    /// bitwise identical to the serial pass (Eval mode consumes no RNG).
    ///
    /// Latency + batch-size accounting through `obs`: histogram
    /// `infer.predict_ns` gets the wall-clock duration, histogram
    /// `infer.predict_rows` the batch size, counter `infer.predict_calls`
    /// bumps once. Free (one branch) under [`Obs::disabled`].
    ///
    /// [`Obs::disabled`]: obs::Obs::disabled
    pub fn predict_scalar(&self, x: &Matrix, obs: &obs::Obs) -> Vec<f64> {
        let mut ws = Workspace::new();
        self.predict_scalar_with(x, &mut ws, obs)
    }

    /// [`Mlp::predict_scalar`] writing serial-path activations into a
    /// caller-owned [`Workspace`] — the allocation-free variant long-lived
    /// scorers (the serving engine's worker threads) call in a loop.
    ///
    /// Batches large enough to cross the parallel threshold still fan out
    /// into per-worker scratch workspaces; `ws` only backs the serial path.
    pub fn predict_scalar_with(&self, x: &Matrix, ws: &mut Workspace, obs: &obs::Obs) -> Vec<f64> {
        obs.counter("infer.predict_calls", 1.0);
        obs.observe("infer.predict_rows", x.rows() as f64);
        obs.time("infer.predict_ns", || {
            // Below this many rows, thread spawn overhead beats the win.
            const PAR_MIN_ROWS: usize = 256;
            let n = x.rows();
            let workers = par::workers_for(n);
            if n < PAR_MIN_ROWS || workers <= 1 {
                let mut rng = Prng::seed_from_u64(0); // unused in Eval mode
                return self.infer(x, Mode::Eval, &mut rng, ws).col(0);
            }
            let mut out = vec![0.0; n];
            let chunk_rows = n.div_ceil(workers);
            par::par_chunks_mut(&mut out, chunk_rows, |start, chunk| {
                let rows: Vec<usize> = (start..start + chunk.len()).collect();
                let sub = x.select_rows(&rows);
                let mut ws = Workspace::new();
                let mut rng = Prng::seed_from_u64(0); // unused in Eval mode
                let y = self.infer(&sub, Mode::Eval, &mut rng, &mut ws);
                for (i, o) in chunk.iter_mut().enumerate() {
                    *o = y.get(i, 0);
                }
            });
            out
        })
    }

    /// Columnar `f32` inference fast path: the network applied to a
    /// [`FeatureBlock`] through the cache-blocked GEMM micro-kernels,
    /// ping-ponging activations between the workspace's two blocks.
    ///
    /// Semantics are [`Mode::Eval`] only: dropout layers are identity at
    /// evaluation time and are skipped outright (no RNG is consumed).
    /// Each dense layer packs its weights into [`NR`]-column panels
    /// (`O(k·n)`, amortized over the `O(rows·k·n)` GEMM), folds its bias
    /// into the accumulator initialization, and applies its activation
    /// via [`Activation::apply_block_slice`] (vectorized ELU, elementwise
    /// [`Activation::apply_f32`] otherwise).
    ///
    /// Results are **bitwise identical across [`Dispatch`] modes** (the
    /// scalar kernel mirrors the SIMD FMA order) but only approximately
    /// equal to the `f64` [`Mlp::infer`] reference — the tolerance
    /// contract lives in DESIGN.md §11.
    ///
    /// [`NR`]: linalg::block::NR
    ///
    /// # Panics
    /// Panics when `x` has the wrong number of features.
    pub fn infer_block<'ws>(
        &self,
        x: &FeatureBlock,
        ws: &'ws mut BlockWorkspace,
        dispatch: Dispatch,
    ) -> &'ws FeatureBlock {
        assert_eq!(
            x.cols(),
            self.input_dim,
            "Mlp::infer_block: expected {} features, got {}",
            self.input_dim,
            x.cols()
        );
        let (left, right) = ws.bufs.split_at_mut(1);
        let mut cur: &mut FeatureBlock = &mut left[0];
        let mut nxt: &mut FeatureBlock = &mut right[0];
        let mut started = false;
        for layer in &self.layers {
            // Dropout is identity in Eval mode — skipped on this path.
            if let Layer::Dense(d) = layer {
                let input: &FeatureBlock = if started { cur } else { x };
                let packed = PackedGemm::pack(d.weights(), d.biases());
                packed.apply_into(input, nxt, dispatch);
                let act = d.activation();
                if act != Activation::Identity {
                    for c in 0..nxt.cols() {
                        act.apply_block_slice(nxt.col_mut(c), dispatch);
                    }
                }
                std::mem::swap(&mut cur, &mut nxt);
                started = true;
            }
        }
        assert!(started, "built Mlp always has a dense layer");
        cur
    }

    /// Block-path twin of [`Mlp::predict_scalar`]: scores a batch through
    /// [`Mlp::infer_block`] under the process-wide
    /// [`linalg::block::active_dispatch`] and returns the first output
    /// column. Instrumented separately (`infer.block_calls`,
    /// `infer.block_rows`, `infer.block_ns`) so the serving engine's
    /// metrics distinguish the two paths.
    pub fn predict_scalar_block(&self, x: &Matrix, obs: &obs::Obs) -> Vec<f64> {
        obs.counter("infer.block_calls", 1.0);
        obs.observe("infer.block_rows", x.rows() as f64);
        obs.time("infer.block_ns", || {
            let block = FeatureBlock::from_matrix(x);
            let mut ws = BlockWorkspace::new();
            let out = self.infer_block(&block, &mut ws, linalg::block::active_dispatch());
            out.col_f64(0)
        })
    }

    /// Backward pass through the whole stack. `grad_out` is `dL/d(output)`
    /// for the latest [`Mode::Train`] forward batch. Returns `dL/d(input)`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = match layer {
                Layer::Dense(d) => d.backward(&g),
                Layer::Dropout(d) => d.backward(&g),
            };
        }
        g
    }

    /// Clears accumulated gradients in every dense layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            if let Layer::Dense(d) = layer {
                d.zero_grad();
            }
        }
    }

    /// Visits `(params, grads)` slices of every dense layer in a stable
    /// order (used by optimizers).
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut [f64], &[f64])) {
        for layer in &mut self.layers {
            if let Layer::Dense(d) = layer {
                d.visit_params(&mut f);
            }
        }
    }

    /// Read-only access to the layer stack (diagnostics and tests).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Returns a copy of the network with every dropout layer's rate set
    /// to `p`. Used for MC-dropout inference at a rate different from the
    /// training rate (the rDRP paper *adds* a dropout layer at inference,
    /// so the MC rate is a free parameter).
    pub fn with_dropout_rate(&self, p: f64) -> Mlp {
        let mut out = self.clone();
        for layer in &mut out.layers {
            if let Layer::Dropout(d) = layer {
                *d = Dropout::new(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(rng_seed: u64) -> Mlp {
        let mut rng = Prng::seed_from_u64(rng_seed);
        Mlp::builder(2)
            .dense(4, Activation::Tanh)
            .dropout(0.2)
            .dense(1, Activation::Identity)
            .build(&mut rng)
    }

    #[test]
    fn shapes_and_param_count() {
        let m = tiny(0);
        assert_eq!(m.input_dim(), 2);
        assert_eq!(m.output_dim(), 1);
        assert_eq!(m.param_count(), (2 * 4 + 4) + (4 + 1));
    }

    #[test]
    fn eval_forward_is_deterministic() {
        let m = tiny(1);
        let x = Matrix::from_rows(&[vec![0.5, -0.3], vec![1.0, 2.0]]);
        let a = m.predict_scalar(&x, &obs::Obs::disabled());
        let b = m.predict_scalar(&x, &obs::Obs::disabled());
        assert_eq!(a, b);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut m = tiny(4);
        let x = Matrix::from_rows(&[vec![0.5, -0.3], vec![1.0, 2.0], vec![-1.5, 0.25]]);
        let mut ws = Workspace::new();
        for mode in [Mode::Eval, Mode::McDropout] {
            let mut fwd_rng = Prng::seed_from_u64(123);
            let want = m.forward(&x, mode, &mut fwd_rng);
            let mut inf_rng = Prng::seed_from_u64(123);
            let got = m.infer(&x, mode, &mut inf_rng, &mut ws);
            assert_eq!(*got, want, "{mode:?}");
            assert_eq!(fwd_rng.uniform(), inf_rng.uniform(), "{mode:?} draw counts");
        }
    }

    #[test]
    fn workspace_reuse_does_not_leak_state_between_calls() {
        let m = tiny(5);
        let mut ws = Workspace::new();
        let mut rng = Prng::seed_from_u64(0);
        let a = Matrix::from_rows(&[vec![0.1, 0.2], vec![3.0, -4.0]]);
        let b = Matrix::from_rows(&[vec![9.0, -9.0]]);
        let first = m.infer(&a, Mode::Eval, &mut rng, &mut ws).clone();
        let _ = m.infer(&b, Mode::Eval, &mut rng, &mut ws);
        let again = m.infer(&a, Mode::Eval, &mut rng, &mut ws);
        assert_eq!(*again, first);
    }

    #[test]
    fn parallel_row_chunked_prediction_is_bitwise_serial() {
        // Large enough to cross the parallel threshold.
        let mut rng = Prng::seed_from_u64(21);
        let m = Mlp::builder(6)
            .dense(16, Activation::Elu)
            .dropout(0.1)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let n = 1537; // odd size: uneven final chunk
        let x = Matrix::from_vec(n, 6, rng.gaussian_vec(n * 6));
        let parallel = m.predict_scalar(&x, &obs::Obs::disabled());
        let mut ws = Workspace::new();
        let mut eval_rng = Prng::seed_from_u64(0);
        let serial = m.infer(&x, Mode::Eval, &mut eval_rng, &mut ws).col(0);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn block_path_tracks_scalar_reference() {
        let mut rng = Prng::seed_from_u64(11);
        let m = Mlp::builder(6)
            .dense(32, Activation::Elu)
            .dropout(0.1)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let n = 333; // not a multiple of the MR=16 tile
        let x = Matrix::from_vec(n, 6, rng.gaussian_vec(n * 6));
        let want = m.predict_scalar(&x, &obs::Obs::disabled());
        let got = m.predict_scalar_block(&x, &obs::Obs::disabled());
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() < 1e-4 * w.abs().max(1.0),
                "block {g} vs scalar {w}"
            );
        }
    }

    #[test]
    fn block_path_is_dispatch_invariant_bitwise() {
        let mut rng = Prng::seed_from_u64(12);
        let m = Mlp::builder(5)
            .dense(24, Activation::Tanh)
            .dense(3, Activation::Softplus)
            .build(&mut rng);
        let x = Matrix::from_vec(77, 5, rng.gaussian_vec(77 * 5));
        let block = linalg::block::FeatureBlock::from_matrix(&x);
        let mut ws_a = BlockWorkspace::new();
        let mut ws_b = BlockWorkspace::new();
        let scalar = m.infer_block(&block, &mut ws_a, Dispatch::Scalar);
        let best = m.infer_block(&block, &mut ws_b, linalg::block::best_dispatch());
        for c in 0..3 {
            for r in 0..77 {
                assert_eq!(
                    scalar.get(r, c).to_bits(),
                    best.get(r, c).to_bits(),
                    "[{r},{c}] differs between dispatch modes"
                );
            }
        }
    }

    #[test]
    fn train_forward_differs_across_calls_with_dropout() {
        let mut m = tiny(2);
        let mut rng = Prng::seed_from_u64(99);
        let x = Matrix::full(8, 2, 1.0);
        let a = m.forward(&x, Mode::Train, &mut rng);
        let b = m.forward(&x, Mode::Train, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn full_network_gradient_check() {
        // Build without dropout so the function is deterministic.
        let mut rng = Prng::seed_from_u64(5);
        let mut m = Mlp::builder(3)
            .dense(5, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let x = Matrix::from_rows(&[vec![0.2, -0.4, 1.0], vec![1.3, 0.7, -0.9]]);
        // L = sum of outputs.
        let mut r = Prng::seed_from_u64(0);
        m.zero_grad();
        let _ = m.forward(&x, Mode::Train, &mut r);
        let grad_x = m.backward(&Matrix::full(2, 1, 1.0));

        let eps = 1e-6;
        let mut xp = x.clone();
        xp.set(1, 2, x.get(1, 2) + eps);
        let mut xm = x.clone();
        xm.set(1, 2, x.get(1, 2) - eps);
        let fp: f64 = m.predict_scalar(&xp, &obs::Obs::disabled()).iter().sum();
        let fm: f64 = m.predict_scalar(&xm, &obs::Obs::disabled()).iter().sum();
        let numeric = (fp - fm) / (2.0 * eps);
        assert!(
            (numeric - grad_x.get(1, 2)).abs() < 1e-5,
            "numeric {numeric} vs analytic {}",
            grad_x.get(1, 2)
        );
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn wrong_input_width_panics() {
        let mut m = tiny(3);
        let mut rng = Prng::seed_from_u64(0);
        let x = Matrix::zeros(1, 5);
        let _ = m.forward(&x, Mode::Eval, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one dense layer")]
    fn empty_plan_panics() {
        let mut rng = Prng::seed_from_u64(0);
        let _ = Mlp::builder(2).dropout(0.1).build(&mut rng);
    }
}
