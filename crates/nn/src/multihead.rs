//! Shared-trunk multi-head networks.
//!
//! The representation-learning uplift baselines (TARNet, DragonNet,
//! OffsetNet, SNet) all share a feature extractor ("trunk") whose output
//! feeds several task heads — e.g. TARNet has a control-outcome head and a
//! treated-outcome head. This module provides the generic machinery; the
//! model-specific head wiring and losses live in the `uplift` crate.

use crate::mlp::{Mlp, Workspace};
use crate::optimizer::Optimizer;
use crate::Mode;
use linalg::random::Prng;
use linalg::Matrix;

/// Anything with optimizer-visible parameters.
pub trait Parameterized {
    /// Visits `(params, grads)` for every parameter tensor in a stable order.
    fn visit_param_tensors(&mut self, f: &mut dyn FnMut(&mut [f64], &[f64]));
}

impl Parameterized for Mlp {
    fn visit_param_tensors(&mut self, f: &mut dyn FnMut(&mut [f64], &[f64])) {
        self.visit_params(|p, g| f(p, g));
    }
}

/// One optimizer step over a [`Parameterized`] model with global-norm
/// gradient clipping (`grad_clip <= 0` disables) and L2 weight decay.
pub fn clipped_step(
    model: &mut dyn Parameterized,
    opt: &mut dyn Optimizer,
    grad_clip: f64,
    weight_decay: f64,
) {
    let mut clip_scale = 1.0;
    if grad_clip > 0.0 {
        let mut sq = 0.0;
        model.visit_param_tensors(&mut |_p, g| {
            sq += g.iter().map(|v| v * v).sum::<f64>();
        });
        let norm = sq.sqrt();
        if norm > grad_clip {
            clip_scale = grad_clip / norm;
        }
    }
    let mut id = 0usize;
    model.visit_param_tensors(&mut |p, g| {
        if clip_scale != 1.0 || weight_decay > 0.0 {
            let adjusted: Vec<f64> = p
                .iter()
                .zip(g)
                .map(|(&pi, &gi)| gi * clip_scale + weight_decay * pi)
                .collect();
            opt.update(id, p, &adjusted);
        } else {
            opt.update(id, p, g);
        }
        id += 1;
    });
    opt.end_step();
}

/// A shared trunk feeding several independent heads.
#[derive(Debug, Clone)]
pub struct MultiHeadNet {
    trunk: Mlp,
    heads: Vec<Mlp>,
}

tinyjson::json_struct!(MultiHeadNet { trunk, heads });

impl MultiHeadNet {
    /// Assembles a multi-head network.
    ///
    /// # Panics
    /// Panics if any head's input dimension differs from the trunk's
    /// output dimension, or there are no heads.
    pub fn new(trunk: Mlp, heads: Vec<Mlp>) -> Self {
        assert!(!heads.is_empty(), "MultiHeadNet needs at least one head");
        for (i, h) in heads.iter().enumerate() {
            assert_eq!(
                h.input_dim(),
                trunk.output_dim(),
                "head {i} expects {} inputs but trunk emits {}",
                h.input_dim(),
                trunk.output_dim()
            );
        }
        MultiHeadNet { trunk, heads }
    }

    /// Number of heads.
    pub fn head_count(&self) -> usize {
        self.heads.len()
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.trunk.input_dim()
    }

    /// Each head's output dimension, in head order.
    pub fn head_output_dims(&self) -> Vec<usize> {
        self.heads.iter().map(Mlp::output_dim).collect()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.trunk.param_count() + self.heads.iter().map(Mlp::param_count).sum::<usize>()
    }

    /// Forward pass: returns each head's output batch.
    pub fn forward(&mut self, x: &Matrix, mode: Mode, rng: &mut Prng) -> Vec<Matrix> {
        let rep = self.trunk.forward(x, mode, rng);
        self.heads
            .iter_mut()
            .map(|h| h.forward(&rep, mode, rng))
            .collect()
    }

    /// Convenience: eval-mode inference returning each head's first output
    /// column. Runs the trunk once through an immutable [`Mlp::infer`]
    /// pass and feeds the shared representation to every head, reusing
    /// one head-side scratch workspace — no layer caches are touched.
    pub fn predict_scalars(&self, x: &Matrix) -> Vec<Vec<f64>> {
        let mut rng = Prng::seed_from_u64(0);
        let mut ws_trunk = Workspace::new();
        let mut ws_head = Workspace::new();
        let rep = self.trunk.infer(x, Mode::Eval, &mut rng, &mut ws_trunk);
        self.heads
            .iter()
            .map(|h| h.infer(rep, Mode::Eval, &mut rng, &mut ws_head).col(0))
            .collect()
    }

    /// Block-path twin of [`MultiHeadNet::predict_scalars`]: trunk and
    /// heads run through the columnar `f32` kernels
    /// ([`Mlp::infer_block`]) under the process-wide dispatch. The trunk
    /// representation stays in `f32` block layout end to end — no
    /// row-major round-trip between trunk and heads.
    pub fn predict_scalars_block(&self, x: &Matrix) -> Vec<Vec<f64>> {
        let dispatch = linalg::block::active_dispatch();
        let block = linalg::block::FeatureBlock::from_matrix(x);
        let mut ws_trunk = crate::mlp::BlockWorkspace::new();
        let mut ws_head = crate::mlp::BlockWorkspace::new();
        let rep = self.trunk.infer_block(&block, &mut ws_trunk, dispatch);
        self.heads
            .iter()
            .map(|h| h.infer_block(rep, &mut ws_head, dispatch).col_f64(0))
            .collect()
    }

    /// Backward pass. `head_grads[i]` is `dL/d(head_i output)` for the
    /// latest [`Mode::Train`] forward batch; heads that do not participate
    /// in the loss for this batch should receive a zero matrix.
    ///
    /// # Panics
    /// Panics if the number of gradient matrices differs from the number
    /// of heads.
    #[allow(clippy::expect_used)] // shape invariants upheld by construction
    pub fn backward(&mut self, head_grads: &[Matrix]) {
        assert_eq!(
            head_grads.len(),
            self.heads.len(),
            "backward: expected {} head gradients, got {}",
            self.heads.len(),
            head_grads.len()
        );
        let mut trunk_grad: Option<Matrix> = None;
        for (head, g) in self.heads.iter_mut().zip(head_grads) {
            let gi = head.backward(g);
            trunk_grad = Some(match trunk_grad {
                None => gi,
                Some(acc) => acc.add(&gi).expect("heads share the trunk output shape"),
            });
        }
        self.trunk
            .backward(&trunk_grad.expect("at least one head by construction"));
    }

    /// Clears accumulated gradients everywhere.
    pub fn zero_grad(&mut self) {
        self.trunk.zero_grad();
        for h in &mut self.heads {
            h.zero_grad();
        }
    }
}

impl Parameterized for MultiHeadNet {
    fn visit_param_tensors(&mut self, f: &mut dyn FnMut(&mut [f64], &[f64])) {
        self.trunk.visit_params(|p, g| f(p, g));
        for h in &mut self.heads {
            h.visit_params(|p, g| f(p, g));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::optimizer::Adam;

    fn two_head(seed: u64) -> MultiHeadNet {
        let mut rng = Prng::seed_from_u64(seed);
        let trunk = Mlp::builder(3).dense(6, Activation::Tanh).build(&mut rng);
        let h0 = Mlp::builder(6)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let h1 = Mlp::builder(6)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        MultiHeadNet::new(trunk, vec![h0, h1])
    }

    #[test]
    fn shapes() {
        let net = two_head(0);
        assert_eq!(net.head_count(), 2);
        assert_eq!(net.input_dim(), 3);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, -1.0, 0.5]]);
        let outs = net.predict_scalars(&x);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "head 0 expects")]
    fn mismatched_head_input_panics() {
        let mut rng = Prng::seed_from_u64(1);
        let trunk = Mlp::builder(3).dense(6, Activation::Tanh).build(&mut rng);
        let bad = Mlp::builder(5)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let _ = MultiHeadNet::new(trunk, vec![bad]);
    }

    /// Two heads fit two different linear targets of the same features.
    #[test]
    fn trains_both_heads_jointly() {
        let mut rng = Prng::seed_from_u64(2);
        let rows: Vec<Vec<f64>> = (0..256)
            .map(|_| vec![rng.gaussian(), rng.gaussian(), rng.gaussian()])
            .collect();
        let x = Matrix::from_rows(&rows);
        let y0: Vec<f64> = rows.iter().map(|r| r[0] + 0.5 * r[1]).collect();
        let y1: Vec<f64> = rows.iter().map(|r| -r[2] + 0.2).collect();

        let mut net = two_head(3);
        let mut opt = Adam::new(0.01);
        let n = x.rows() as f64;
        let mut final_loss = f64::INFINITY;
        for _ in 0..400 {
            net.zero_grad();
            let outs = net.forward(&x, Mode::Train, &mut rng);
            let p0 = outs[0].col(0);
            let p1 = outs[1].col(0);
            let mut loss = 0.0;
            let g0: Vec<f64> = p0
                .iter()
                .zip(&y0)
                .map(|(&p, &y)| {
                    loss += (p - y) * (p - y);
                    2.0 * (p - y) / n
                })
                .collect();
            let g1: Vec<f64> = p1
                .iter()
                .zip(&y1)
                .map(|(&p, &y)| {
                    loss += (p - y) * (p - y);
                    2.0 * (p - y) / n
                })
                .collect();
            final_loss = loss / n;
            net.backward(&[Matrix::column(&g0), Matrix::column(&g1)]);
            clipped_step(&mut net, &mut opt, 5.0, 0.0);
        }
        assert!(final_loss < 0.02, "final loss {final_loss}");
    }

    #[test]
    fn gradient_check_through_trunk() {
        let mut net = two_head(4);
        let x = Matrix::from_rows(&[vec![0.3, -0.7, 1.1]]);
        // L = head0(x) + 2 * head1(x).
        let mut rng = Prng::seed_from_u64(5);
        net.zero_grad();
        let _ = net.forward(&x, Mode::Train, &mut rng);
        net.backward(&[Matrix::full(1, 1, 1.0), Matrix::full(1, 1, 2.0)]);
        // Perturb a trunk weight and compare.
        let eps = 1e-6;
        let mut analytic = None;
        net.trunk.visit_params(|_p, g| {
            if analytic.is_none() {
                analytic = Some(g[0]);
            }
        });
        let objective = |net: &MultiHeadNet| {
            let outs = net.predict_scalars(&x);
            outs[0][0] + 2.0 * outs[1][0]
        };
        let mut plus = net.clone();
        let mut first = true;
        plus.trunk.visit_params(|p, _| {
            if first {
                p[0] += eps;
                first = false;
            }
        });
        let mut minus = net.clone();
        let mut first = true;
        minus.trunk.visit_params(|p, _| {
            if first {
                p[0] -= eps;
                first = false;
            }
        });
        let numeric = (objective(&plus) - objective(&minus)) / (2.0 * eps);
        let analytic = analytic.unwrap();
        assert!(
            (numeric - analytic).abs() < 1e-5,
            "numeric {numeric} vs analytic {analytic}"
        );
    }
}
