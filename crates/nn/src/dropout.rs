//! Inverted dropout with a Monte-Carlo inference mode.
//!
//! Standard dropout is a training-time regularizer. rDRP additionally
//! exploits it at *inference* time: running the trained network many times
//! with dropout still active ("MC dropout", Gal & Ghahramani 2016) yields a
//! distribution of predictions whose standard deviation `r̂(x)` feeds the
//! conformal score of Eq. (3).

use linalg::random::Prng;
use linalg::Matrix;
use tinyjson::{FromJson, JsonError, ToJson, Value};

/// Execution mode for a network pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: dropout masks are sampled, caches are kept for backprop.
    Train,
    /// Deterministic inference: dropout is the identity.
    Eval,
    /// Monte-Carlo inference: dropout masks are sampled (like training)
    /// but no caches are kept. Used by [`crate::mc::mc_predict`].
    McDropout,
}

impl Mode {
    /// Whether dropout masks are sampled in this mode.
    #[inline]
    pub fn stochastic(self) -> bool {
        matches!(self, Mode::Train | Mode::McDropout)
    }
}

/// Inverted dropout: each unit is dropped with probability `p`, survivors
/// are scaled by `1/(1-p)` so activations keep their expectation.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f64,
    mask: Option<Matrix>,
}

impl ToJson for Dropout {
    fn to_json(&self) -> Value {
        Value::Num(self.p)
    }
}

impl FromJson for Dropout {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let p = v.as_f64()?;
        if (0.0..1.0).contains(&p) {
            Ok(Dropout::new(p))
        } else {
            Err(JsonError::msg(format!(
                "dropout probability must be in [0, 1), got {p}"
            )))
        }
    }
}

impl From<f64> for Dropout {
    fn from(p: f64) -> Self {
        Dropout::new(p)
    }
}

impl From<Dropout> for f64 {
    fn from(d: Dropout) -> Self {
        d.p
    }
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1), got {p}"
        );
        Dropout { p, mask: None }
    }

    /// The configured drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Forward pass. In stochastic modes a fresh mask is sampled; in
    /// [`Mode::Eval`] the layer is the identity.
    #[allow(clippy::expect_used)] // shape invariants upheld by construction
    pub fn forward(&mut self, x: &Matrix, mode: Mode, rng: &mut Prng) -> Matrix {
        if !mode.stochastic() || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Matrix::from_vec(
            x.rows(),
            x.cols(),
            (0..x.rows() * x.cols())
                .map(|_| if rng.bernoulli(keep) { scale } else { 0.0 })
                .collect(),
        );
        let out = x.hadamard(&mask).expect("mask shaped like input");
        self.mask = if mode == Mode::Train {
            Some(mask)
        } else {
            None
        };
        out
    }

    /// Immutable inference pass: applies a freshly sampled mask to `x` in
    /// place (or leaves it untouched in [`Mode::Eval`] / at `p == 0`,
    /// consuming no RNG draws — the same draw-count contract as
    /// [`Dropout::forward`], so the two stay stream-compatible).
    ///
    /// Mask elements are sampled in row-major order and applied with the
    /// same multiplication as `forward`, so for an identical RNG state
    /// the result is bitwise identical. No training mask is retained.
    ///
    /// # Panics
    /// Panics in [`Mode::Train`]: training needs the cached mask, which
    /// an immutable pass cannot store.
    pub fn infer_inplace(&self, x: &mut Matrix, mode: Mode, rng: &mut Prng) {
        assert!(
            mode != Mode::Train,
            "Dropout::infer_inplace: Train mode requires forward"
        );
        if !mode.stochastic() || self.p == 0.0 {
            return;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        for v in x.as_mut_slice() {
            let m = if rng.bernoulli(keep) { scale } else { 0.0 };
            *v *= m;
        }
    }

    /// Backward pass: re-applies the training mask to the gradient.
    ///
    /// # Panics
    /// Panics if the latest forward pass was not in [`Mode::Train`]
    /// (no mask is retained in other modes).
    #[allow(clippy::expect_used)] // shape invariants upheld by construction
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad_out
                .hadamard(mask)
                .expect("gradient shaped like forward input"),
            // With p == 0 the forward pass was the identity even in Train
            // mode, so the gradient passes through unchanged.
            None if self.p == 0.0 => grad_out.clone(),
            None => panic!("Dropout::backward: no training mask (was forward run in Train mode?)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5);
        let mut rng = Prng::seed_from_u64(0);
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(d.forward(&x, Mode::Eval, &mut rng), x);
    }

    #[test]
    fn zero_probability_is_identity_everywhere() {
        let mut d = Dropout::new(0.0);
        let mut rng = Prng::seed_from_u64(0);
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(d.forward(&x, Mode::Train, &mut rng), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3);
        let mut rng = Prng::seed_from_u64(7);
        let x = Matrix::full(1, 10_000, 1.0);
        let y = d.forward(&x, Mode::Train, &mut rng);
        let mean: f64 = y.as_slice().iter().sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
        // Survivors are scaled by 1/(1-p).
        let survivors: Vec<f64> = y.as_slice().iter().cloned().filter(|&v| v != 0.0).collect();
        assert!(survivors.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-12));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5);
        let mut rng = Prng::seed_from_u64(1);
        let x = Matrix::full(2, 8, 1.0);
        let y = d.forward(&x, Mode::Train, &mut rng);
        let g = d.backward(&Matrix::full(2, 8, 1.0));
        // Gradient is zero exactly where the forward output is zero.
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn mc_mode_randomizes_but_keeps_no_mask() {
        let mut d = Dropout::new(0.5);
        let mut rng = Prng::seed_from_u64(2);
        let x = Matrix::full(1, 64, 1.0);
        let a = d.forward(&x, Mode::McDropout, &mut rng);
        let b = d.forward(&x, Mode::McDropout, &mut rng);
        assert_ne!(a, b, "two MC passes should use different masks");
    }

    #[test]
    fn infer_inplace_matches_forward_bitwise() {
        let d = Dropout::new(0.4);
        let x = Matrix::from_rows(&[vec![1.0, -2.0, 3.0], vec![-4.0, 5.0, -6.0]]);
        let mut fwd_rng = Prng::seed_from_u64(17);
        let want = d.clone().forward(&x, Mode::McDropout, &mut fwd_rng);
        let mut inf_rng = Prng::seed_from_u64(17);
        let mut got = x.clone();
        d.infer_inplace(&mut got, Mode::McDropout, &mut inf_rng);
        assert_eq!(got, want);
        // Both paths consumed the same number of draws.
        assert_eq!(fwd_rng.uniform(), inf_rng.uniform());
    }

    #[test]
    fn infer_inplace_eval_is_identity_without_draws() {
        let d = Dropout::new(0.5);
        let mut rng = Prng::seed_from_u64(4);
        let mut untouched = Prng::seed_from_u64(4);
        let mut x = Matrix::full(2, 3, 2.0);
        d.infer_inplace(&mut x, Mode::Eval, &mut rng);
        assert_eq!(x, Matrix::full(2, 3, 2.0));
        assert_eq!(rng.uniform(), untouched.uniform());
    }

    #[test]
    #[should_panic(expected = "no training mask")]
    fn backward_after_mc_panics() {
        let mut d = Dropout::new(0.5);
        let mut rng = Prng::seed_from_u64(3);
        let x = Matrix::full(1, 4, 1.0);
        let _ = d.forward(&x, Mode::McDropout, &mut rng);
        let _ = d.backward(&x);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn invalid_probability_panics() {
        Dropout::new(1.0);
    }
}
