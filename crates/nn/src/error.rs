//! Typed training failures.
//!
//! The trainer is the innermost fallible layer of the pipeline: bad data
//! (NaN features, empty sets) and bad hyperparameters (a learning rate
//! that diverges) both surface here first. Every condition that used to
//! panic is now a [`TrainError`] so callers can distinguish "your input
//! is broken" from "training ran but blew up" and react — the `uplift`
//! and `rdrp` crates wrap these in their own error types via `From`.

use std::fmt;

/// Why a training run could not produce a usable network.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The training set has no rows.
    EmptyDataset,
    /// The scalar-objective trainer requires a 1-unit output layer.
    NonScalarOutput {
        /// The network's actual output dimension.
        output_dim: usize,
    },
    /// Input vectors disagree with each other or with the network —
    /// e.g. a treatment-arm index with no matching head, or label/row
    /// count mismatches (used by the K-arm trainer, [`crate::karm`]).
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Training diverged (non-finite loss or gradient) and every
    /// rollback-and-halve-LR retry was exhausted.
    Diverged {
        /// Epoch (0-based) at which the final divergence was detected.
        epoch: usize,
        /// Number of rollback retries that were attempted before giving up.
        attempts: usize,
        /// What tripped the sentinel on the final attempt.
        cause: DivergenceCause,
    },
}

/// What the per-batch divergence sentinel observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceCause {
    /// The batch loss was NaN or infinite (bad labels/features, or the
    /// optimizer stepped the weights into a non-finite region).
    NonFiniteLoss {
        /// The offending loss value.
        loss: f64,
    },
    /// The global gradient norm was NaN or infinite.
    NonFiniteGradient,
    /// The global gradient norm exceeded the configured hard limit
    /// (an order of magnitude beyond the clip threshold — clipping keeps
    /// the step bounded, but a norm this size means the loss surface has
    /// been left behind and continuing wastes epochs).
    ExplodingGradient {
        /// The observed global gradient norm.
        norm: f64,
    },
}

impl DivergenceCause {
    /// A short stable identifier for trace events — unlike [`fmt::Display`]
    /// it never embeds the observed value, so golden traces stay byte-stable
    /// across runs that diverge with different losses/norms.
    pub fn label(&self) -> &'static str {
        match self {
            DivergenceCause::NonFiniteLoss { .. } => "non_finite_loss",
            DivergenceCause::NonFiniteGradient => "non_finite_gradient",
            DivergenceCause::ExplodingGradient { .. } => "exploding_gradient",
        }
    }
}

impl fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceCause::NonFiniteLoss { loss } => {
                write!(f, "non-finite batch loss ({loss})")
            }
            DivergenceCause::NonFiniteGradient => write!(f, "non-finite gradient norm"),
            DivergenceCause::ExplodingGradient { norm } => {
                write!(f, "gradient norm {norm:.3e} exceeded the divergence limit")
            }
        }
    }
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "training set is empty"),
            TrainError::NonScalarOutput { output_dim } => write!(
                f,
                "scalar-objective trainer requires a 1-unit output layer, got {output_dim}"
            ),
            TrainError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            TrainError::Diverged {
                epoch,
                attempts,
                cause,
            } => write!(
                f,
                "training diverged at epoch {epoch} ({cause}) after {attempts} rollback \
                 retr{}",
                if *attempts == 1 { "y" } else { "ies" }
            ),
        }
    }
}

impl std::error::Error for TrainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_facts() {
        let e = TrainError::Diverged {
            epoch: 7,
            attempts: 3,
            cause: DivergenceCause::NonFiniteLoss { loss: f64::NAN },
        };
        let s = e.to_string();
        assert!(s.contains("epoch 7"), "{s}");
        assert!(s.contains("3 rollback"), "{s}");
        assert!(s.contains("non-finite batch loss"), "{s}");
        assert!(TrainError::EmptyDataset.to_string().contains("empty"));
        let g = DivergenceCause::ExplodingGradient { norm: 1e9 }.to_string();
        assert!(g.contains("1.000e9"), "{g}");
    }
}
