//! Minibatch training loop.

use crate::mlp::Mlp;
use crate::objective::Objective;
use crate::optimizer::{Adam, Optimizer, Sgd};
use crate::Mode;
use linalg::random::Prng;
use linalg::Matrix;

/// Which optimizer the trainer instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with momentum 0.9.
    Momentum,
    /// Adam with canonical betas.
    Adam,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// Optimizer choice.
    pub optimizer: OptimizerKind,
    /// Shuffle sample order each epoch.
    pub shuffle: bool,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
    /// Stop early when the epoch loss has not improved by at least
    /// `min_delta` for `patience` consecutive epochs (`patience = 0`
    /// disables early stopping).
    pub patience: usize,
    /// Minimum improvement that resets the patience counter.
    pub min_delta: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 256,
            lr: 1e-3,
            optimizer: OptimizerKind::Adam,
            shuffle: true,
            weight_decay: 0.0,
            grad_clip: 5.0,
            patience: 0,
            min_delta: 1e-6,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean per-batch loss for each completed epoch.
    pub epoch_losses: Vec<f64>,
    /// Whether early stopping fired before `epochs` finished.
    pub stopped_early: bool,
}

impl TrainReport {
    /// Loss of the final completed epoch.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().unwrap_or(&f64::NAN)
    }
}

/// Trains `net` on the rows of `x` under `objective`.
///
/// The objective is consulted with the *row indices into `x`* of each
/// minibatch, so it can look up labels and apply batch-level normalization
/// (as the DRP and Direct Rank losses require).
///
/// # Panics
/// Panics if `x` is empty or the network's output is not 1-dimensional
/// (scalar-objective trainer).
pub fn train(
    net: &mut Mlp,
    x: &Matrix,
    objective: &dyn Objective,
    config: &TrainConfig,
    rng: &mut Prng,
) -> TrainReport {
    assert!(x.rows() > 0, "train: empty dataset");
    assert_eq!(
        net.output_dim(),
        1,
        "train: scalar-objective trainer requires a 1-unit output layer"
    );
    let mut opt: Box<dyn Optimizer> = match config.optimizer {
        OptimizerKind::Sgd => Box::new(Sgd::new(config.lr)),
        OptimizerKind::Momentum => Box::new(Sgd::with_momentum(config.lr, 0.9)),
        OptimizerKind::Adam => Box::new(Adam::new(config.lr)),
    };
    let n = x.rows();
    let batch = config.batch_size.clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut report = TrainReport {
        epoch_losses: Vec::with_capacity(config.epochs),
        stopped_early: false,
    };
    let mut best = f64::INFINITY;
    let mut stale = 0usize;

    for _epoch in 0..config.epochs {
        if config.shuffle {
            rng.shuffle(&mut order);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            net.zero_grad();
            let out = net.forward(&xb, Mode::Train, rng);
            let preds = out.col(0);
            let (loss, grad) = objective.loss_and_grad(&preds, chunk);
            epoch_loss += loss;
            batches += 1;
            let grad_mat = Matrix::column(&grad);
            net.backward(&grad_mat);
            apply_step(net, opt.as_mut(), config);
        }
        let mean_loss = epoch_loss / batches.max(1) as f64;
        report.epoch_losses.push(mean_loss);
        if config.patience > 0 {
            if mean_loss < best - config.min_delta {
                best = mean_loss;
                stale = 0;
            } else {
                stale += 1;
                if stale >= config.patience {
                    report.stopped_early = true;
                    break;
                }
            }
        }
    }
    report
}

/// One optimizer step over every parameter tensor of `net`, applying
/// weight decay and global-norm gradient clipping from `config`.
pub fn apply_step(net: &mut Mlp, opt: &mut dyn Optimizer, config: &TrainConfig) {
    crate::multihead::clipped_step(net, opt, config.grad_clip, config.weight_decay);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::objective::{BceObjective, MseObjective};

    /// y = 0.5 x0 - 1.5 x1 + 0.3, learnable by a linear model.
    fn linear_problem(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gaussian(), rng.gaussian()])
            .collect();
        let y = rows.iter().map(|r| 0.5 * r[0] - 1.5 * r[1] + 0.3).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn mse_regression_converges() {
        let (x, y) = linear_problem(256, 1);
        let mut rng = Prng::seed_from_u64(2);
        let mut net = Mlp::builder(2)
            .dense(8, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(y);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 0.01,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &obj, &cfg, &mut rng);
        assert!(
            report.final_loss() < 0.01,
            "final loss {}",
            report.final_loss()
        );
        // Loss decreased substantially from the first epoch.
        assert!(report.final_loss() < report.epoch_losses[0] / 10.0);
    }

    #[test]
    fn bce_classification_converges() {
        let mut rng = Prng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..256)
            .map(|_| vec![rng.gaussian(), rng.gaussian()])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + r[1] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut net = Mlp::builder(2)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = BceObjective::new(y.clone());
        let cfg = TrainConfig {
            epochs: 150,
            batch_size: 64,
            lr: 0.02,
            ..TrainConfig::default()
        };
        let _ = train(&mut net, &x, &obj, &cfg, &mut rng);
        // Training accuracy should be high on this separable problem.
        let preds = net.predict_scalar(&x);
        let correct = preds
            .iter()
            .zip(&y)
            .filter(|(&s, &t)| (s > 0.0) == (t > 0.5))
            .count();
        let acc = correct as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        let (x, y) = linear_problem(64, 4);
        let mut rng = Prng::seed_from_u64(5);
        let mut net = Mlp::builder(2)
            .dense(4, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(y);
        let cfg = TrainConfig {
            epochs: 10_000,
            batch_size: 64,
            lr: 0.05,
            patience: 10,
            min_delta: 1e-9,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &obj, &cfg, &mut rng);
        assert!(report.stopped_early, "expected early stop");
        assert!(report.epoch_losses.len() < 10_000);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (x, y) = linear_problem(128, 6);
        let obj = MseObjective::new(y);
        let train_with = |wd: f64| {
            let mut rng = Prng::seed_from_u64(7);
            let mut net = Mlp::builder(2)
                .dense(8, Activation::Tanh)
                .dense(1, Activation::Identity)
                .build(&mut rng);
            let cfg = TrainConfig {
                epochs: 100,
                weight_decay: wd,
                ..TrainConfig::default()
            };
            let _ = train(&mut net, &x, &obj, &cfg, &mut rng);
            let mut sq = 0.0;
            net.visit_params(|p, _| sq += p.iter().map(|v| v * v).sum::<f64>());
            sq
        };
        assert!(train_with(0.1) < train_with(0.0));
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = linear_problem(64, 8);
        let obj = MseObjective::new(y);
        let run = || {
            let mut rng = Prng::seed_from_u64(9);
            let mut net = Mlp::builder(2)
                .dense(4, Activation::Tanh)
                .dense(1, Activation::Identity)
                .build(&mut rng);
            let cfg = TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            };
            train(&mut net, &x, &obj, &cfg, &mut rng).epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut rng = Prng::seed_from_u64(0);
        let mut net = Mlp::builder(2)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(vec![]);
        let _ = train(
            &mut net,
            &Matrix::zeros(0, 2),
            &obj,
            &TrainConfig::default(),
            &mut rng,
        );
    }
}
