//! Minibatch training loop with divergence guardrails.
//!
//! Training failure is a *data* problem as much as an optimization
//! problem: a NaN feature, a corrupted label, or an over-eager learning
//! rate all surface here first, as a non-finite batch loss or an
//! exploding gradient. The loop therefore keeps a checkpoint of the best
//! weights seen so far and, when a divergence sentinel trips, rolls the
//! network back to that checkpoint, halves the learning rate, and
//! retries — a bounded number of times, with every recovery recorded in
//! the [`TrainReport`]. Only when the retries are exhausted does the run
//! return a typed [`TrainError`].

use crate::error::{DivergenceCause, TrainError};
use crate::mlp::Mlp;
use crate::objective::Objective;
use crate::optimizer::{Adam, Optimizer, Sgd};
use crate::Mode;
use linalg::random::Prng;
use linalg::Matrix;
use obs::Obs;

/// Which optimizer the trainer instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with momentum 0.9.
    Momentum,
    /// Adam with canonical betas.
    Adam,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// Optimizer choice.
    pub optimizer: OptimizerKind,
    /// Shuffle sample order each epoch.
    pub shuffle: bool,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
    /// Stop early when the epoch loss has not improved by at least
    /// `min_delta` for `patience` consecutive epochs (`patience = 0`
    /// disables early stopping).
    pub patience: usize,
    /// Minimum improvement that resets the patience counter.
    pub min_delta: f64,
    /// How many times a diverged run may roll back to the best checkpoint
    /// and retry at half the learning rate before giving up with
    /// [`TrainError::Diverged`] (0 = fail on the first divergence).
    pub max_divergence_retries: usize,
    /// Pre-clip global gradient norm beyond which the run is declared
    /// diverged (0 disables the magnitude sentinel; non-finite norms
    /// always trip).
    pub grad_norm_limit: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 256,
            lr: 1e-3,
            optimizer: OptimizerKind::Adam,
            shuffle: true,
            weight_decay: 0.0,
            grad_clip: 5.0,
            patience: 0,
            min_delta: 1e-6,
            max_divergence_retries: 3,
            grad_norm_limit: 1e6,
        }
    }
}

/// One divergence-recovery event: the sentinel tripped, the network was
/// rolled back to the best checkpoint, and training resumed at `lr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Epoch (0-based, counting completed epochs) being attempted when
    /// the sentinel tripped.
    pub epoch: usize,
    /// What tripped the sentinel.
    pub cause: DivergenceCause,
    /// The halved learning rate used after the rollback.
    pub lr: f64,
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean per-batch loss for each completed epoch.
    pub epoch_losses: Vec<f64>,
    /// Whether early stopping fired before `epochs` finished.
    pub stopped_early: bool,
    /// Every checkpoint-rollback the divergence guard performed, in
    /// order. Empty for a clean run.
    pub recoveries: Vec<Recovery>,
}

impl TrainReport {
    /// Loss of the final completed epoch, or `None` when no epoch
    /// completed (`epochs == 0`).
    pub fn final_loss(&self) -> Option<f64> {
        self.epoch_losses.last().copied()
    }

    /// Whether the divergence guard had to intervene at least once.
    pub fn recovered(&self) -> bool {
        !self.recoveries.is_empty()
    }
}

fn make_optimizer(kind: OptimizerKind, lr: f64) -> Box<dyn Optimizer> {
    match kind {
        OptimizerKind::Sgd => Box::new(Sgd::new(lr)),
        OptimizerKind::Momentum => Box::new(Sgd::with_momentum(lr, 0.9)),
        OptimizerKind::Adam => Box::new(Adam::new(lr)),
    }
}

/// Checks the accumulated gradients for divergence: a non-finite global
/// norm always trips; a finite norm trips when it exceeds `limit`
/// (`limit <= 0` disables the magnitude check).
fn gradient_sentinel(net: &mut Mlp, limit: f64) -> Option<DivergenceCause> {
    let mut sq = 0.0;
    net.visit_params(|_p, g| sq += g.iter().map(|v| v * v).sum::<f64>());
    let norm = sq.sqrt();
    if !norm.is_finite() {
        return Some(DivergenceCause::NonFiniteGradient);
    }
    if limit > 0.0 && norm > limit {
        return Some(DivergenceCause::ExplodingGradient { norm });
    }
    None
}

/// Trains `net` on the rows of `x` under `objective`.
///
/// The objective is consulted with the *row indices into `x`* of each
/// minibatch, so it can look up labels and apply batch-level normalization
/// (as the DRP and Direct Rank losses require).
///
/// The run's decisions are recorded through `obs`; pass
/// [`Obs::disabled`] when no trace is wanted (one branch per recording
/// call). Trace vocabulary:
/// * event `train.epoch` `{epoch, loss}` per completed epoch;
/// * event `train.divergence` `{epoch, cause, lr}` per sentinel trip, with
///   the *halved* learning rate the rollback resumes at;
/// * counters `train.epochs` and `train.divergence_retries`;
/// * gauge `train.final_loss` when at least one epoch completed.
///
/// # Errors
/// [`TrainError::EmptyDataset`] when `x` has no rows,
/// [`TrainError::NonScalarOutput`] when the network's output is not
/// 1-dimensional, and [`TrainError::Diverged`] when a non-finite loss or
/// exploding gradient persists through every rollback retry.
pub fn train(
    net: &mut Mlp,
    x: &Matrix,
    objective: &dyn Objective,
    config: &TrainConfig,
    rng: &mut Prng,
    obs: &Obs,
) -> Result<TrainReport, TrainError> {
    if x.rows() == 0 {
        return Err(TrainError::EmptyDataset);
    }
    if net.output_dim() != 1 {
        return Err(TrainError::NonScalarOutput {
            output_dim: net.output_dim(),
        });
    }
    let mut lr = config.lr;
    let mut opt = make_optimizer(config.optimizer, lr);
    let n = x.rows();
    let batch = config.batch_size.clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut report = TrainReport {
        epoch_losses: Vec::with_capacity(config.epochs),
        stopped_early: false,
        recoveries: Vec::new(),
    };
    let mut best = f64::INFINITY;
    let mut stale = 0usize;
    // Rollback target: the weights of the best epoch so far (the initial
    // weights until an epoch completes).
    let mut checkpoint = net.clone();
    let mut best_checkpoint_loss = f64::INFINITY;
    let mut attempts = 0usize;

    let mut epoch = 0usize;
    while epoch < config.epochs {
        if config.shuffle {
            rng.shuffle(&mut order);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let mut tripped: Option<DivergenceCause> = None;
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            net.zero_grad();
            let out = net.forward(&xb, Mode::Train, rng);
            let preds = out.col(0);
            let (loss, grad) = objective.loss_and_grad(&preds, chunk);
            if !loss.is_finite() {
                tripped = Some(DivergenceCause::NonFiniteLoss { loss });
                break;
            }
            epoch_loss += loss;
            batches += 1;
            let grad_mat = Matrix::column(&grad);
            net.backward(&grad_mat);
            if let Some(cause) = gradient_sentinel(net, config.grad_norm_limit) {
                tripped = Some(cause);
                break;
            }
            apply_step(net, opt.as_mut(), config);
        }
        if let Some(cause) = tripped {
            attempts += 1;
            if attempts > config.max_divergence_retries {
                return Err(TrainError::Diverged {
                    epoch,
                    attempts: attempts - 1,
                    cause,
                });
            }
            // Roll back to the best weights and retry this epoch at half
            // the learning rate. The optimizer is rebuilt from scratch:
            // its moment estimates were accumulated along the diverged
            // trajectory and would re-poison the restored weights.
            net.clone_from(&checkpoint);
            lr *= 0.5;
            opt = make_optimizer(config.optimizer, lr);
            obs.counter("train.divergence_retries", 1.0);
            obs.event(
                "train.divergence",
                &[
                    ("epoch", epoch.into()),
                    ("cause", cause.label().into()),
                    ("lr", lr.into()),
                ],
            );
            report.recoveries.push(Recovery { epoch, cause, lr });
            continue;
        }
        let mean_loss = epoch_loss / batches.max(1) as f64;
        obs.counter("train.epochs", 1.0);
        obs.event(
            "train.epoch",
            &[("epoch", epoch.into()), ("loss", mean_loss.into())],
        );
        report.epoch_losses.push(mean_loss);
        if mean_loss < best_checkpoint_loss {
            best_checkpoint_loss = mean_loss;
            checkpoint.clone_from(net);
        }
        if config.patience > 0 {
            if mean_loss < best - config.min_delta {
                best = mean_loss;
                stale = 0;
            } else {
                stale += 1;
                if stale >= config.patience {
                    report.stopped_early = true;
                    break;
                }
            }
        }
        epoch += 1;
    }
    if let Some(final_loss) = report.final_loss() {
        obs.gauge("train.final_loss", final_loss);
    }
    Ok(report)
}

/// One optimizer step over every parameter tensor of `net`, applying
/// weight decay and global-norm gradient clipping from `config`.
pub fn apply_step(net: &mut Mlp, opt: &mut dyn Optimizer, config: &TrainConfig) {
    crate::multihead::clipped_step(net, opt, config.grad_clip, config.weight_decay);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::objective::{BceObjective, MseObjective};
    use std::cell::Cell;

    /// y = 0.5 x0 - 1.5 x1 + 0.3, learnable by a linear model.
    fn linear_problem(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gaussian(), rng.gaussian()])
            .collect();
        let y = rows.iter().map(|r| 0.5 * r[0] - 1.5 * r[1] + 0.3).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn mse_regression_converges() {
        let (x, y) = linear_problem(256, 1);
        let mut rng = Prng::seed_from_u64(2);
        let mut net = Mlp::builder(2)
            .dense(8, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(y);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 0.01,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap();
        let final_loss = report.final_loss().unwrap();
        assert!(final_loss < 0.01, "final loss {final_loss}");
        // Loss decreased substantially from the first epoch.
        assert!(final_loss < report.epoch_losses[0] / 10.0);
        assert!(!report.recovered());
    }

    #[test]
    fn bce_classification_converges() {
        let mut rng = Prng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..256)
            .map(|_| vec![rng.gaussian(), rng.gaussian()])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] + r[1] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut net = Mlp::builder(2)
            .dense(8, Activation::Relu)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = BceObjective::new(y.clone());
        let cfg = TrainConfig {
            epochs: 150,
            batch_size: 64,
            lr: 0.02,
            ..TrainConfig::default()
        };
        let _ = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap();
        // Training accuracy should be high on this separable problem.
        let preds = net.predict_scalar(&x, &Obs::disabled());
        let correct = preds
            .iter()
            .zip(&y)
            .filter(|(&s, &t)| (s > 0.0) == (t > 0.5))
            .count();
        let acc = correct as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        let (x, y) = linear_problem(64, 4);
        let mut rng = Prng::seed_from_u64(5);
        let mut net = Mlp::builder(2)
            .dense(4, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(y);
        let cfg = TrainConfig {
            epochs: 10_000,
            batch_size: 64,
            lr: 0.05,
            patience: 10,
            min_delta: 1e-9,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap();
        assert!(report.stopped_early, "expected early stop");
        assert!(report.epoch_losses.len() < 10_000);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (x, y) = linear_problem(128, 6);
        let obj = MseObjective::new(y);
        let train_with = |wd: f64| {
            let mut rng = Prng::seed_from_u64(7);
            let mut net = Mlp::builder(2)
                .dense(8, Activation::Tanh)
                .dense(1, Activation::Identity)
                .build(&mut rng);
            let cfg = TrainConfig {
                epochs: 100,
                weight_decay: wd,
                ..TrainConfig::default()
            };
            let _ = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap();
            let mut sq = 0.0;
            net.visit_params(|p, _| sq += p.iter().map(|v| v * v).sum::<f64>());
            sq
        };
        assert!(train_with(0.1) < train_with(0.0));
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = linear_problem(64, 8);
        let obj = MseObjective::new(y);
        let run = || {
            let mut rng = Prng::seed_from_u64(9);
            let mut net = Mlp::builder(2)
                .dense(4, Activation::Tanh)
                .dense(1, Activation::Identity)
                .build(&mut rng);
            let cfg = TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            };
            train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled())
                .unwrap()
                .epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let mut rng = Prng::seed_from_u64(0);
        let mut net = Mlp::builder(2)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(vec![]);
        let err = train(
            &mut net,
            &Matrix::zeros(0, 2),
            &obj,
            &TrainConfig::default(),
            &mut rng,
            &Obs::disabled(),
        )
        .unwrap_err();
        assert_eq!(err, TrainError::EmptyDataset);
    }

    #[test]
    fn non_scalar_output_is_a_typed_error() {
        let mut rng = Prng::seed_from_u64(0);
        let mut net = Mlp::builder(2)
            .dense(3, Activation::Identity)
            .build(&mut rng);
        let (x, y) = linear_problem(8, 1);
        let obj = MseObjective::new(y);
        let err = train(
            &mut net,
            &x,
            &obj,
            &TrainConfig::default(),
            &mut rng,
            &Obs::disabled(),
        )
        .unwrap_err();
        assert_eq!(err, TrainError::NonScalarOutput { output_dim: 3 });
    }

    #[test]
    fn zero_epochs_reports_no_final_loss() {
        let (x, y) = linear_problem(8, 2);
        let mut rng = Prng::seed_from_u64(1);
        let mut net = Mlp::builder(2)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(y);
        let cfg = TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap();
        assert_eq!(report.final_loss(), None);
    }

    #[test]
    fn nan_labels_exhaust_retries_into_typed_error() {
        let (x, mut y) = linear_problem(64, 3);
        y[10] = f64::NAN;
        let mut rng = Prng::seed_from_u64(4);
        let mut net = Mlp::builder(2)
            .dense(4, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(y);
        let cfg = TrainConfig {
            epochs: 10,
            shuffle: false,
            batch_size: 64, // one batch: the NaN label poisons every epoch
            ..TrainConfig::default()
        };
        let err = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap_err();
        match err {
            TrainError::Diverged {
                epoch,
                attempts,
                cause,
            } => {
                assert_eq!(epoch, 0, "NaN data diverges immediately");
                assert_eq!(attempts, cfg.max_divergence_retries);
                assert!(matches!(cause, DivergenceCause::NonFiniteLoss { .. }));
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn exploding_lr_without_clipping_is_a_typed_error_not_a_panic() {
        // Feature scale x10 makes the MSE Hessian stiff; an absurd SGD
        // step with clipping disabled must explode, trip the sentinel on
        // every retry, and come back as a typed error.
        let (x, y) = linear_problem(128, 5);
        let x = x.scale(10.0);
        let mut rng = Prng::seed_from_u64(6);
        let mut net = Mlp::builder(2)
            .dense(4, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = MseObjective::new(y);
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 32,
            lr: 1e9,
            optimizer: OptimizerKind::Sgd,
            grad_clip: 0.0,
            ..TrainConfig::default()
        };
        let err = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap_err();
        assert!(matches!(err, TrainError::Diverged { .. }), "{err:?}");
    }

    /// Objective that reports a NaN loss for its first `poisoned` calls,
    /// then delegates to MSE — a deterministic transient divergence.
    struct TransientNan {
        inner: MseObjective,
        remaining: Cell<usize>,
    }

    impl Objective for TransientNan {
        fn loss_and_grad(&self, preds: &[f64], rows: &[usize]) -> (f64, Vec<f64>) {
            if self.remaining.get() > 0 {
                self.remaining.set(self.remaining.get() - 1);
                return (f64::NAN, vec![0.0; preds.len()]);
            }
            self.inner.loss_and_grad(preds, rows)
        }
    }

    #[test]
    fn transient_divergence_rolls_back_and_recovers() {
        let (x, y) = linear_problem(128, 10);
        let mut rng = Prng::seed_from_u64(11);
        let mut net = Mlp::builder(2)
            .dense(8, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = TransientNan {
            inner: MseObjective::new(y),
            remaining: Cell::new(2),
        };
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 64,
            lr: 0.02,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap();
        // Two poisoned calls => two rollbacks, each halving the LR.
        assert_eq!(report.recoveries.len(), 2);
        assert!(report.recovered());
        assert!((report.recoveries[0].lr - 0.01).abs() < 1e-12);
        assert!((report.recoveries[1].lr - 0.005).abs() < 1e-12);
        assert!(report
            .recoveries
            .iter()
            .all(|r| matches!(r.cause, DivergenceCause::NonFiniteLoss { .. })));
        // All attempted epochs still completed and training converged.
        assert_eq!(report.epoch_losses.len(), 200);
        assert!(report.final_loss().unwrap() < 0.05);
    }

    #[test]
    fn retry_budget_zero_fails_on_first_divergence() {
        let (x, y) = linear_problem(32, 12);
        let mut rng = Prng::seed_from_u64(13);
        let mut net = Mlp::builder(2)
            .dense(4, Activation::Tanh)
            .dense(1, Activation::Identity)
            .build(&mut rng);
        let obj = TransientNan {
            inner: MseObjective::new(y),
            remaining: Cell::new(1),
        };
        let cfg = TrainConfig {
            max_divergence_retries: 0,
            ..TrainConfig::default()
        };
        let err = train(&mut net, &x, &obj, &cfg, &mut rng, &Obs::disabled()).unwrap_err();
        assert!(
            matches!(err, TrainError::Diverged { attempts: 0, .. }),
            "{err:?}"
        );
    }
}
