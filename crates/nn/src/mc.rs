//! Monte-Carlo dropout inference.
//!
//! Section IV-C2 of the paper: running the trained DRP network `K` times
//! with dropout active yields `K` point estimates per sample; their mean is
//! an (optionally smoothed) point prediction and their standard deviation
//! is the uncertainty scalar `r̂(x)` that the conformal score (Eq. 3)
//! normalizes by. Section IV-D notes the passes are embarrassingly
//! parallel — we parallelize over passes with scoped worker threads,
//! each reusing one scratch [`Workspace`] across all of its passes.

use crate::mlp::{Mlp, Workspace};
use crate::Mode;
use linalg::random::Prng;
use linalg::Matrix;

/// Per-sample mean and standard deviation across MC-dropout passes.
#[derive(Debug, Clone)]
pub struct McStats {
    /// Mean prediction per sample.
    pub mean: Vec<f64>,
    /// Population standard deviation per sample.
    pub std: Vec<f64>,
    /// Number of passes used.
    pub passes: usize,
}

/// Runs `passes` stochastic forward passes of `net` on `x` and returns the
/// per-sample mean and standard deviation of the scalar output.
///
/// Passes run in parallel against the shared `&Mlp` — no per-pass network
/// clone. Each worker thread owns one reusable [`Workspace`] for all of
/// its passes; the per-pass RNGs are forked from `rng` up front, so
/// results are deterministic given the seed *and* independent of thread
/// scheduling.
///
/// A zero standard deviation can occur (e.g. a ReLU network that drops the
/// same dead units every pass); callers that divide by the std — the
/// conformal score — should apply their own floor. `std_floor` here only
/// guards the returned values against exact zeros.
///
/// # Panics
/// Panics if `passes == 0` or the network output is not scalar.
pub fn mc_predict(
    net: &Mlp,
    x: &Matrix,
    passes: usize,
    std_floor: f64,
    rng: &mut Prng,
    obs: &obs::Obs,
) -> McStats {
    mc_predict_map(net, x, passes, std_floor, rng, |v| v, obs)
}

/// Like [`mc_predict`] but applies `transform` to each pass's raw outputs
/// before aggregating. DRP uses this with the sigmoid: the paper's `r̂(x)`
/// is the standard deviation of the *ROI* point estimate `σ(ŝ)`, not of
/// the raw score `ŝ`.
///
/// Latency + batch accounting through `obs`: histogram `infer.mc_ns`
/// gets the wall-clock duration of the whole MC sweep, histogram
/// `infer.mc_rows` the batch size, counter `infer.mc_passes` the number
/// of stochastic passes. Free (one branch) under [`Obs::disabled`];
/// recording happens outside the worker threads so the parallel schedule
/// is untouched.
///
/// [`Obs::disabled`]: obs::Obs::disabled
pub fn mc_predict_map(
    net: &Mlp,
    x: &Matrix,
    passes: usize,
    std_floor: f64,
    rng: &mut Prng,
    transform: impl Fn(f64) -> f64 + Sync,
    obs: &obs::Obs,
) -> McStats {
    obs.counter("infer.mc_passes", passes as f64);
    obs.observe("infer.mc_rows", x.rows() as f64);
    obs.time("infer.mc_ns", || {
        mc_predict_map_inner(net, x, passes, std_floor, rng, transform)
    })
}

fn mc_predict_map_inner(
    net: &Mlp,
    x: &Matrix,
    passes: usize,
    std_floor: f64,
    rng: &mut Prng,
    transform: impl Fn(f64) -> f64 + Sync,
) -> McStats {
    assert!(passes > 0, "mc_predict: need at least one pass");
    assert_eq!(net.output_dim(), 1, "mc_predict: scalar output expected");
    let n = x.rows();
    // Fork one RNG per pass up front (deterministic order).
    let pass_rngs: Vec<Prng> = (0..passes).map(|_| rng.fork()).collect();

    let outputs: Vec<Vec<f64>> =
        par::par_map_init(pass_rngs, Workspace::new, |ws, mut pass_rng| {
            let mut out = net.infer(x, Mode::McDropout, &mut pass_rng, ws).col(0);
            for v in &mut out {
                *v = transform(*v);
            }
            out
        });

    let mut mean = vec![0.0; n];
    for pass in &outputs {
        for (m, &v) in mean.iter_mut().zip(pass) {
            *m += v;
        }
    }
    let inv = 1.0 / passes as f64;
    for m in &mut mean {
        *m *= inv;
    }
    let mut var = vec![0.0; n];
    for pass in &outputs {
        for ((s, &v), &m) in var.iter_mut().zip(pass).zip(&mean) {
            *s += (v - m) * (v - m);
        }
    }
    let std = var
        .into_iter()
        .map(|v| (v * inv).sqrt().max(std_floor))
        .collect();
    McStats { mean, std, passes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::Mlp;

    fn net_with_dropout(seed: u64, p: f64) -> Mlp {
        let mut rng = Prng::seed_from_u64(seed);
        Mlp::builder(3)
            .dense(16, Activation::Tanh)
            .dropout(p)
            .dense(1, Activation::Identity)
            .build(&mut rng)
    }

    #[test]
    fn no_dropout_means_zero_std() {
        let net = net_with_dropout(0, 0.0);
        let x = Matrix::from_rows(&[vec![1.0, -1.0, 0.5]]);
        let mut rng = Prng::seed_from_u64(1);
        let stats = mc_predict(&net, &x, 20, 0.0, &mut rng, &obs::Obs::disabled());
        // All passes are identical; only accumulation rounding remains.
        assert!(stats.std[0] < 1e-12, "std = {}", stats.std[0]);
        // The MC mean equals the deterministic prediction.
        let det = net.predict_scalar(&x, &obs::Obs::disabled())[0];
        assert!((stats.mean[0] - det).abs() < 1e-12);
    }

    #[test]
    fn dropout_produces_positive_std() {
        let net = net_with_dropout(2, 0.3);
        let x = Matrix::from_rows(&[vec![1.0, -1.0, 0.5], vec![0.2, 0.4, -2.0]]);
        let mut rng = Prng::seed_from_u64(3);
        let stats = mc_predict(&net, &x, 50, 0.0, &mut rng, &obs::Obs::disabled());
        assert!(stats.std.iter().all(|&s| s > 0.0));
        assert_eq!(stats.passes, 50);
        assert_eq!(stats.mean.len(), 2);
    }

    #[test]
    fn deterministic_given_seed_despite_parallelism() {
        let net = net_with_dropout(4, 0.2);
        let x = Matrix::from_rows(&vec![vec![0.1, 0.2, 0.3]; 8]);
        let run = |seed| {
            let mut rng = Prng::seed_from_u64(seed);
            mc_predict(&net, &x, 32, 0.0, &mut rng, &obs::Obs::disabled())
        };
        let a = run(10);
        let b = run(10);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std, b.std);
        let c = run(11);
        assert_ne!(a.mean, c.mean);
    }

    /// Reference implementation of the pre-workspace design: clone the
    /// network for every pass and run the mutable training-style forward.
    fn mc_clone_per_pass(net: &Mlp, x: &Matrix, passes: usize, rng: &mut Prng) -> Vec<Vec<f64>> {
        let pass_rngs: Vec<Prng> = (0..passes).map(|_| rng.fork()).collect();
        pass_rngs
            .into_iter()
            .map(|mut pass_rng| {
                let mut local = Mlp::clone(net);
                local.forward(x, Mode::McDropout, &mut pass_rng).col(0)
            })
            .collect()
    }

    #[test]
    fn zero_clone_path_matches_clone_per_pass_bitwise() {
        let net = net_with_dropout(21, 0.25);
        let x = Matrix::from_rows(&vec![vec![0.3, -0.7, 1.2]; 5]);
        for seed in [0u64, 1, 42, 0x5C0BE] {
            let mut ref_rng = Prng::seed_from_u64(seed);
            let reference = mc_clone_per_pass(&net, &x, 16, &mut ref_rng);
            let mut mean = vec![0.0; x.rows()];
            for pass in &reference {
                for (m, &v) in mean.iter_mut().zip(pass) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= 16.0;
            }

            let mut rng = Prng::seed_from_u64(seed);
            let stats = mc_predict(&net, &x, 16, 0.0, &mut rng, &obs::Obs::disabled());
            assert_eq!(stats.mean, mean, "seed {seed}");
            // The caller-visible RNG advanced identically on both paths.
            assert_eq!(ref_rng.uniform(), rng.uniform(), "seed {seed}");
        }
    }

    #[test]
    fn std_floor_is_applied() {
        let net = net_with_dropout(5, 0.0);
        let x = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]);
        let mut rng = Prng::seed_from_u64(6);
        let stats = mc_predict(&net, &x, 10, 1e-4, &mut rng, &obs::Obs::disabled());
        assert_eq!(stats.std[0], 1e-4);
    }

    #[test]
    fn more_dropout_more_uncertainty() {
        let x = Matrix::from_rows(&vec![vec![1.0, 1.0, 1.0]; 4]);
        let avg_std = |p: f64| {
            let net = net_with_dropout(7, p);
            let mut rng = Prng::seed_from_u64(8);
            let stats = mc_predict(&net, &x, 200, 0.0, &mut rng, &obs::Obs::disabled());
            stats.std.iter().sum::<f64>() / stats.std.len() as f64
        };
        assert!(avg_std(0.5) > avg_std(0.05));
    }

    #[test]
    fn transform_applied_before_aggregation() {
        let net = net_with_dropout(10, 0.3);
        let x = Matrix::from_rows(&[vec![0.4, -0.2, 1.0]]);
        // std of sigmoid(outputs) differs from sigmoid of std in general;
        // verify the mapped mean equals manually transformed pass outputs.
        let mut r1 = Prng::seed_from_u64(20);
        let mapped = mc_predict_map(
            &net,
            &x,
            40,
            0.0,
            &mut r1,
            linalg::vector::sigmoid,
            &obs::Obs::disabled(),
        );
        assert!(mapped.mean[0] > 0.0 && mapped.mean[0] < 1.0);
        let mut r2 = Prng::seed_from_u64(20);
        let raw = mc_predict(&net, &x, 40, 0.0, &mut r2, &obs::Obs::disabled());
        // Jensen: sigmoid of the mean differs from mean of sigmoids, but
        // both should be in (0,1) and close for small spread.
        assert!((linalg::vector::sigmoid(raw.mean[0]) - mapped.mean[0]).abs() < 0.2);
        assert!(mapped.std[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_panics() {
        let net = net_with_dropout(9, 0.1);
        let x = Matrix::zeros(1, 3);
        let mut rng = Prng::seed_from_u64(0);
        let _ = mc_predict(&net, &x, 0, 0.0, &mut rng, &obs::Obs::disabled());
    }
}
