//! K-arm outcome training over a shared-trunk multi-head network.
//!
//! The K-arm meta-learners need one conditional-outcome surface per arm:
//! head `k` of a [`MultiHeadNet`] predicts `E[y | x, arm = k]` (arm 0 is
//! control). Training uses a **masked** squared loss: each minibatch row
//! contributes gradient only through the head of the arm that row
//! actually received, so every head is fit on its own arm's outcomes
//! while the trunk representation is shared across all arms — the same
//! weight-sharing trick TARNet uses for two arms, generalized to K.
//!
//! The loop mirrors [`crate::trainer::train`]'s structure (minibatches,
//! Adam, global-norm clipping via [`clipped_step`]) but fails fast on a
//! non-finite loss instead of carrying the checkpoint-rollback machinery:
//! the K-arm fitters feed it bounded synthetic outcomes where divergence
//! means bad inputs, not bad luck.

use crate::error::{DivergenceCause, TrainError};
use crate::multihead::{clipped_step, MultiHeadNet};
use crate::optimizer::Adam;
use crate::Mode;
use crate::{Activation, Mlp};
use linalg::random::Prng;
use linalg::Matrix;
use obs::Obs;

/// Hyperparameters for the masked K-arm head trainer.
#[derive(Debug, Clone)]
pub struct KArmTrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Shuffle sample order each epoch.
    pub shuffle: bool,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
}

impl Default for KArmTrainConfig {
    fn default() -> Self {
        KArmTrainConfig {
            epochs: 100,
            batch_size: 256,
            lr: 1e-3,
            shuffle: true,
            weight_decay: 0.0,
            grad_clip: 5.0,
        }
    }
}

/// Builds the canonical K-arm network: a `rep_dim`-unit tanh trunk and
/// one scalar head per arm (a `head_hidden`-unit tanh layer feeding an
/// identity unit; `head_hidden = 0` makes the heads linear).
pub fn build_karm_net(
    input_dim: usize,
    rep_dim: usize,
    head_hidden: usize,
    n_arms: usize,
    rng: &mut Prng,
) -> MultiHeadNet {
    let trunk = Mlp::builder(input_dim)
        .dense(rep_dim, Activation::Tanh)
        .build(rng);
    let heads = (0..n_arms)
        .map(|_| {
            let b = Mlp::builder(rep_dim);
            if head_hidden > 0 {
                b.dense(head_hidden, Activation::Tanh)
                    .dense(1, Activation::Identity)
                    .build(rng)
            } else {
                b.dense(1, Activation::Identity).build(rng)
            }
        })
        .collect();
    MultiHeadNet::new(trunk, heads)
}

fn check_inputs(net: &MultiHeadNet, x: &Matrix, arms: &[u8], y: &[f64]) -> Result<(), TrainError> {
    if x.rows() == 0 {
        return Err(TrainError::EmptyDataset);
    }
    if arms.len() != x.rows() || y.len() != x.rows() {
        return Err(TrainError::ShapeMismatch {
            detail: format!(
                "{} feature rows vs {} arm labels vs {} outcomes",
                x.rows(),
                arms.len(),
                y.len()
            ),
        });
    }
    let heads = net.head_count();
    if let Some(&bad) = arms.iter().find(|&&a| usize::from(a) >= heads) {
        return Err(TrainError::ShapeMismatch {
            detail: format!("arm {bad} has no head (network has {heads} heads)"),
        });
    }
    if let Some(dim) = net.head_output_dims().into_iter().find(|&d| d != 1) {
        return Err(TrainError::NonScalarOutput { output_dim: dim });
    }
    Ok(())
}

/// Trains `net`'s heads so head `k` regresses `E[y | x, arm = k]`, using
/// the masked squared loss described in the module docs. Returns the mean
/// per-batch loss of each epoch.
///
/// Trace vocabulary (under `obs`): event `karm.epoch` `{epoch, loss}`,
/// counter `karm.epochs`, gauge `karm.final_loss`.
///
/// # Errors
/// [`TrainError::EmptyDataset`], [`TrainError::ShapeMismatch`] when the
/// inputs disagree or an arm index has no head,
/// [`TrainError::NonScalarOutput`] when a head is not scalar, and
/// [`TrainError::Diverged`] on a non-finite batch loss.
pub fn train_arm_heads(
    net: &mut MultiHeadNet,
    x: &Matrix,
    arms: &[u8],
    y: &[f64],
    config: &KArmTrainConfig,
    rng: &mut Prng,
    obs: &Obs,
) -> Result<Vec<f64>, TrainError> {
    check_inputs(net, x, arms, y)?;
    let n = x.rows();
    let heads = net.head_count();
    let batch = config.batch_size.clamp(1, n);
    let mut opt = Adam::new(config.lr);
    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        if config.shuffle {
            rng.shuffle(&mut order);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let xb = x.select_rows(chunk);
            net.zero_grad();
            let outs = net.forward(&xb, Mode::Train, rng);
            let m = chunk.len() as f64;
            let mut loss = 0.0;
            let mut grads = vec![vec![0.0; chunk.len()]; heads];
            for (pos, &row) in chunk.iter().enumerate() {
                let a = usize::from(arms[row]);
                let pred = outs[a].get(pos, 0);
                let err = pred - y[row];
                loss += err * err / m;
                grads[a][pos] = 2.0 * err / m;
            }
            if !loss.is_finite() {
                return Err(TrainError::Diverged {
                    epoch,
                    attempts: 0,
                    cause: DivergenceCause::NonFiniteLoss { loss },
                });
            }
            epoch_loss += loss;
            batches += 1;
            let head_grads: Vec<Matrix> = grads.iter().map(|g| Matrix::column(g)).collect();
            net.backward(&head_grads);
            clipped_step(net, &mut opt, config.grad_clip, config.weight_decay);
        }
        let mean_loss = epoch_loss / batches.max(1) as f64;
        obs.counter("karm.epochs", 1.0);
        obs.event(
            "karm.epoch",
            &[("epoch", epoch.into()), ("loss", mean_loss.into())],
        );
        epoch_losses.push(mean_loss);
    }
    if let Some(&final_loss) = epoch_losses.last() {
        obs.gauge("karm.final_loss", final_loss);
    }
    Ok(epoch_losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three arms with distinct conditional means over one feature:
    /// `y = effect[a] + 0.5 x + noise`.
    fn three_arm_problem(n: usize, seed: u64) -> (Matrix, Vec<u8>, Vec<f64>) {
        let effects = [0.0, 1.0, -2.0];
        let mut rng = Prng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut arms = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let x = rng.gaussian();
            let a = (i % 3) as u8;
            rows.push(vec![x]);
            arms.push(a);
            y.push(effects[a as usize] + 0.5 * x + 0.05 * rng.gaussian());
        }
        (Matrix::from_rows(&rows), arms, y)
    }

    #[test]
    fn heads_learn_their_own_arms_conditional_mean() {
        let (x, arms, y) = three_arm_problem(600, 1);
        let mut rng = Prng::seed_from_u64(2);
        let mut net = build_karm_net(1, 8, 4, 3, &mut rng);
        let cfg = KArmTrainConfig {
            epochs: 200,
            lr: 5e-3,
            ..KArmTrainConfig::default()
        };
        let losses =
            train_arm_heads(&mut net, &x, &arms, &y, &cfg, &mut rng, &Obs::disabled()).unwrap();
        assert!(losses.last().unwrap() < &0.02, "loss {:?}", losses.last());
        // At x = 0 the heads should separate by the arm effects.
        let probe = Matrix::from_rows(&[vec![0.0]]);
        let preds = net.predict_scalars(&probe);
        assert!((preds[0][0] - 0.0).abs() < 0.2, "control {}", preds[0][0]);
        assert!((preds[1][0] - 1.0).abs() < 0.2, "arm 1 {}", preds[1][0]);
        assert!((preds[2][0] + 2.0).abs() < 0.2, "arm 2 {}", preds[2][0]);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, arms, y) = three_arm_problem(120, 3);
        let run = || {
            let mut rng = Prng::seed_from_u64(4);
            let mut net = build_karm_net(1, 4, 0, 3, &mut rng);
            let cfg = KArmTrainConfig {
                epochs: 15,
                ..KArmTrainConfig::default()
            };
            train_arm_heads(&mut net, &x, &arms, &y, &cfg, &mut rng, &Obs::disabled()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shape_problems_are_typed_errors() {
        let (x, arms, y) = three_arm_problem(30, 5);
        let mut rng = Prng::seed_from_u64(6);
        let cfg = KArmTrainConfig::default();
        // Arm index with no head.
        let mut two_heads = build_karm_net(1, 4, 0, 2, &mut rng);
        let err = train_arm_heads(
            &mut two_heads,
            &x,
            &arms,
            &y,
            &cfg,
            &mut rng,
            &Obs::disabled(),
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::ShapeMismatch { .. }), "{err:?}");
        assert!(err.to_string().contains("no head"), "{err}");
        // Label-count mismatch.
        let mut net = build_karm_net(1, 4, 0, 3, &mut rng);
        let err = train_arm_heads(
            &mut net,
            &x,
            &arms[..10],
            &y,
            &cfg,
            &mut rng,
            &Obs::disabled(),
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::ShapeMismatch { .. }), "{err:?}");
        // Empty data.
        let err = train_arm_heads(
            &mut net,
            &Matrix::zeros(0, 1),
            &[],
            &[],
            &cfg,
            &mut rng,
            &Obs::disabled(),
        )
        .unwrap_err();
        assert_eq!(err, TrainError::EmptyDataset);
    }

    #[test]
    fn non_finite_labels_fail_fast() {
        let (x, arms, mut y) = three_arm_problem(30, 7);
        y[3] = f64::NAN;
        let mut rng = Prng::seed_from_u64(8);
        let mut net = build_karm_net(1, 4, 0, 3, &mut rng);
        let cfg = KArmTrainConfig {
            shuffle: false,
            ..KArmTrainConfig::default()
        };
        let err =
            train_arm_heads(&mut net, &x, &arms, &y, &cfg, &mut rng, &Obs::disabled()).unwrap_err();
        assert!(
            matches!(
                err,
                TrainError::Diverged {
                    epoch: 0,
                    attempts: 0,
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
