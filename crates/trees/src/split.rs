//! Shared split-search machinery for regression and causal trees.

use linalg::random::Prng;
use linalg::Matrix;

/// A candidate axis-aligned split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Feature (column) index.
    pub feature: usize,
    /// Samples with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// The criterion gain of this split (higher is better).
    pub gain: f64,
}

/// Picks up to `max_candidates` distinct threshold candidates for a feature
/// from the node's sample values: the midpoints between consecutive
/// distinct quantile values. Returns an empty vector for constant features.
pub fn candidate_thresholds(values: &[f64], max_candidates: usize) -> Vec<f64> {
    if values.len() < 2 || max_candidates == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted.dedup();
    if sorted.len() < 2 {
        return Vec::new();
    }
    // Midpoints between consecutive distinct values, subsampled evenly.
    let gaps = sorted.len() - 1;
    let take = gaps.min(max_candidates);
    (0..take)
        .map(|i| {
            // Spread the picks across the gap range.
            let g = if take == gaps { i } else { i * gaps / take };
            0.5 * (sorted[g] + sorted[g + 1])
        })
        .collect()
}

/// Chooses which features to consider at a node: all of them when
/// `max_features >= n_features`, otherwise a uniform subsample.
pub fn feature_subset(n_features: usize, max_features: usize, rng: &mut Prng) -> Vec<usize> {
    if max_features >= n_features {
        (0..n_features).collect()
    } else {
        rng.sample_without_replacement(n_features, max_features.max(1))
    }
}

/// Column values of `x[rows, feature]`.
pub fn gather_feature(x: &Matrix, rows: &[usize], feature: usize) -> Vec<f64> {
    rows.iter().map(|&r| x.get(r, feature)).collect()
}

/// Partitions `rows` by a split, preserving order.
pub fn partition(x: &Matrix, rows: &[usize], split: &Split) -> (Vec<usize>, Vec<usize>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &r in rows {
        if x.get(r, split.feature) <= split.threshold {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_between_distinct_values() {
        let t = candidate_thresholds(&[1.0, 2.0, 3.0], 10);
        assert_eq!(t, vec![1.5, 2.5]);
    }

    #[test]
    fn constant_feature_yields_nothing() {
        assert!(candidate_thresholds(&[5.0, 5.0, 5.0], 10).is_empty());
        assert!(candidate_thresholds(&[5.0], 10).is_empty());
        assert!(candidate_thresholds(&[], 10).is_empty());
    }

    #[test]
    fn candidate_cap_respected() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = candidate_thresholds(&values, 8);
        assert_eq!(t.len(), 8);
        // Monotone increasing and within range.
        for w in t.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(t[0] > 0.0 && *t.last().unwrap() < 99.0);
    }

    #[test]
    fn feature_subset_full_and_partial() {
        let mut rng = Prng::seed_from_u64(0);
        assert_eq!(feature_subset(4, 10, &mut rng), vec![0, 1, 2, 3]);
        let sub = feature_subset(10, 3, &mut rng);
        assert_eq!(sub.len(), 3);
        assert!(sub.iter().all(|&f| f < 10));
    }

    #[test]
    fn partition_respects_threshold() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let split = Split {
            feature: 0,
            threshold: 2.0,
            gain: 0.0,
        };
        let (l, r) = partition(&x, &[0, 1, 2], &split);
        assert_eq!(l, vec![0, 1]);
        assert_eq!(r, vec![2]);
    }
}
