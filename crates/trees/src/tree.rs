//! CART regression tree (variance-reduction splitting).

use crate::split::{candidate_thresholds, feature_subset, gather_feature, partition, Split};
use linalg::random::Prng;
use linalg::Matrix;
use tinyjson::{FromJson, JsonError, ToJson, Value};

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Number of features considered per split (`usize::MAX` = all).
    pub max_features: usize,
    /// Candidate thresholds evaluated per feature.
    pub max_thresholds: usize,
}

tinyjson::json_struct!(TreeConfig {
    max_depth,
    min_samples_split,
    min_samples_leaf,
    max_features,
    max_thresholds
});

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 10,
            min_samples_leaf: 5,
            max_features: usize::MAX,
            max_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Internal {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

impl ToJson for Node {
    fn to_json(&self) -> Value {
        match self {
            Node::Leaf { value } => Value::Obj(vec![("Leaf".to_string(), value.to_json())]),
            Node::Internal {
                feature,
                threshold,
                left,
                right,
            } => Value::Obj(vec![(
                "Split".to_string(),
                Value::Arr(vec![
                    feature.to_json(),
                    threshold.to_json(),
                    left.to_json(),
                    right.to_json(),
                ]),
            )]),
        }
    }
}

impl FromJson for Node {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_obj()? {
            [(tag, inner)] if tag == "Leaf" => Ok(Node::Leaf {
                value: inner.as_f64()?,
            }),
            [(tag, inner)] if tag == "Split" => match inner.as_arr()? {
                [feature, threshold, left, right] => Ok(Node::Internal {
                    feature: usize::from_json(feature)?,
                    threshold: threshold.as_f64()?,
                    left: usize::from_json(left)?,
                    right: usize::from_json(right)?,
                }),
                _ => Err(JsonError::msg(
                    "Node::Split: expected [feature, threshold, left, right]",
                )),
            },
            _ => Err(JsonError::msg(
                "Node: expected {\"Leaf\": ...} or {\"Split\": ...}",
            )),
        }
    }
}

/// A fitted CART regression tree (arena-allocated nodes).
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

tinyjson::json_struct!(RegressionTree { nodes, n_features });

struct FitCtx<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    config: &'a TreeConfig,
}

impl RegressionTree {
    /// Fits a tree on rows `rows` of `(x, y)`.
    ///
    /// # Panics
    /// Panics if `rows` is empty or `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[f64], rows: &[usize], config: &TreeConfig, rng: &mut Prng) -> Self {
        assert_eq!(
            x.rows(),
            y.len(),
            "RegressionTree::fit: x/y length mismatch"
        );
        assert!(!rows.is_empty(), "RegressionTree::fit: empty sample");
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        let ctx = FitCtx { x, y, config };
        tree.grow(&ctx, rows, 0, rng);
        tree
    }

    /// Fits on all rows.
    pub fn fit_all(x: &Matrix, y: &[f64], config: &TreeConfig, rng: &mut Prng) -> Self {
        let rows: Vec<usize> = (0..x.rows()).collect();
        Self::fit(x, y, &rows, config, rng)
    }

    fn grow(&mut self, ctx: &FitCtx<'_>, rows: &[usize], depth: usize, rng: &mut Prng) -> usize {
        let mean = mean_of(ctx.y, rows);
        if depth >= ctx.config.max_depth || rows.len() < ctx.config.min_samples_split {
            return self.push_leaf(mean);
        }
        match self.best_split(ctx, rows, rng) {
            None => self.push_leaf(mean),
            Some(split) => {
                let (left_rows, right_rows) = partition(ctx.x, rows, &split);
                if left_rows.len() < ctx.config.min_samples_leaf
                    || right_rows.len() < ctx.config.min_samples_leaf
                {
                    return self.push_leaf(mean);
                }
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.grow(ctx, &left_rows, depth + 1, rng);
                let right = self.grow(ctx, &right_rows, depth + 1, rng);
                self.nodes[id] = Node::Internal {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                id
            }
        }
    }

    fn push_leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// Best variance-reduction split, or `None` if nothing beats the parent.
    fn best_split(&self, ctx: &FitCtx<'_>, rows: &[usize], rng: &mut Prng) -> Option<Split> {
        let parent_sse = sse_of(ctx.y, rows);
        let mut best: Option<Split> = None;
        for feature in feature_subset(ctx.x.cols(), ctx.config.max_features, rng) {
            let values = gather_feature(ctx.x, rows, feature);
            for threshold in candidate_thresholds(&values, ctx.config.max_thresholds) {
                // Single pass: accumulate left stats.
                let mut n_l = 0usize;
                let mut sum_l = 0.0;
                let mut sq_l = 0.0;
                let mut sum_r = 0.0;
                let mut sq_r = 0.0;
                for (&v, &r) in values.iter().zip(rows) {
                    let y = ctx.y[r];
                    if v <= threshold {
                        n_l += 1;
                        sum_l += y;
                        sq_l += y * y;
                    } else {
                        sum_r += y;
                        sq_r += y * y;
                    }
                }
                let n_r = rows.len() - n_l;
                if n_l < ctx.config.min_samples_leaf || n_r < ctx.config.min_samples_leaf {
                    continue;
                }
                let sse_l = sq_l - sum_l * sum_l / n_l as f64;
                let sse_r = sq_r - sum_r * sum_r / n_r as f64;
                let gain = parent_sse - sse_l - sse_r;
                if gain > 1e-12 && best.is_none_or(|b| gain > b.gain) {
                    best = Some(Split {
                        feature,
                        threshold,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Predicts a single sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len(),
            self.n_features,
            "predict_one: expected {} features, got {}",
            self.n_features,
            row.len()
        );
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                Node::Leaf { value } => return *value,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.row_iter().map(|row| self.predict_one(row)).collect()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Feature dimension this tree was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Arena nodes, for the flattened batch-traversal converter.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Tree depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => {
                    1 + walk(nodes, *left).max(walk(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

fn mean_of(y: &[f64], rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len() as f64
}

fn sse_of(y: &[f64], rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let (mut sum, mut sq) = (0.0, 0.0);
    for &r in rows {
        sum += y[r];
        sq += y[r] * y[r];
    }
    sq - sum * sum / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A step function is exactly representable by a depth-1 tree.
    #[test]
    fn fits_step_function_exactly() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 0.5 { 1.0 } else { 5.0 })
            .collect();
        let mut rng = Prng::seed_from_u64(0);
        let tree = RegressionTree::fit_all(&x, &y, &TreeConfig::default(), &mut rng);
        assert!((tree.predict_one(&[0.2]) - 1.0).abs() < 1e-12);
        assert!((tree.predict_one(&[0.8]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn respects_max_depth() {
        let mut rng = Prng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gaussian(), rng.gaussian()])
            .collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1]).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit_all(&x, &y, &cfg, &mut rng);
        assert!(tree.depth() <= 3, "depth {}", tree.depth());
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x = Matrix::from_rows(&(0..20).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y = vec![3.0; 20];
        let mut rng = Prng::seed_from_u64(2);
        let tree = RegressionTree::fit_all(&x, &y, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_one(&[7.0]), 3.0);
    }

    #[test]
    fn deeper_trees_fit_better() {
        let mut rng = Prng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..400).map(|_| vec![rng.uniform()]).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter().map(|r| (r[0] * 10.0).sin()).collect();
        let mse = |depth: usize| {
            let cfg = TreeConfig {
                max_depth: depth,
                min_samples_split: 2,
                min_samples_leaf: 1,
                ..TreeConfig::default()
            };
            let mut rng = Prng::seed_from_u64(4);
            let tree = RegressionTree::fit_all(&x, &y, &cfg, &mut rng);
            let preds = tree.predict(&x);
            preds
                .iter()
                .zip(&y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
                / y.len() as f64
        };
        assert!(mse(6) < mse(2));
        assert!(mse(2) < mse(0) + 1e-12);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x = Matrix::from_rows(&(0..10).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let cfg = TreeConfig {
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 5,
            ..TreeConfig::default()
        };
        let mut rng = Prng::seed_from_u64(5);
        let tree = RegressionTree::fit_all(&x, &y, &cfg, &mut rng);
        // With 10 samples and min 5 per leaf, at most one split is possible.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn prediction_mean_matches_sample_mean_at_root_leaf() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0]]);
        let y = vec![1.0, 2.0, 6.0];
        let mut rng = Prng::seed_from_u64(6);
        let tree = RegressionTree::fit_all(&x, &y, &TreeConfig::default(), &mut rng);
        assert!((tree.predict_one(&[0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_preserves_predictions_and_config_sentinel() {
        let mut rng = Prng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gaussian(), rng.uniform()])
            .collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + r[1].sin()).collect();
        let tree = RegressionTree::fit_all(&x, &y, &TreeConfig::default(), &mut rng);
        let back = RegressionTree::from_json(
            &tinyjson::from_str(&tinyjson::to_string(&tree.to_json())).unwrap(),
        )
        .unwrap();
        assert_eq!(tree.predict(&x), back.predict(&x));

        // `max_features: usize::MAX` is the "all features" sentinel; it
        // must survive the f64-typed JSON number representation.
        let cfg = TreeConfig::default();
        let cfg_back = TreeConfig::from_json(
            &tinyjson::from_str(&tinyjson::to_string(&cfg.to_json())).unwrap(),
        )
        .unwrap();
        assert_eq!(cfg_back.max_features, usize::MAX);
        assert_eq!(cfg_back.max_depth, cfg.max_depth);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rows_panics() {
        let x = Matrix::zeros(3, 1);
        let y = vec![0.0; 3];
        let mut rng = Prng::seed_from_u64(0);
        let _ = RegressionTree::fit(&x, &y, &[], &TreeConfig::default(), &mut rng);
    }
}
