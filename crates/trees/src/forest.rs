//! Bagged random-forest regressor.

use crate::tree::{RegressionTree, TreeConfig};
use linalg::random::Prng;
use linalg::Matrix;

/// Hyperparameters for a random forest.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree settings.
    pub tree: TreeConfig,
    /// Bootstrap-resample the training rows per tree.
    pub bootstrap: bool,
}

tinyjson::json_struct!(RandomForestConfig {
    n_trees,
    tree,
    bootstrap
});

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 50,
            tree: TreeConfig {
                // sqrt-like feature subsampling is set at fit time when
                // max_features is usize::MAX.
                ..TreeConfig::default()
            },
            bootstrap: true,
        }
    }
}

/// A fitted random forest (average of bagged CART trees).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

tinyjson::json_struct!(RandomForest { trees });

impl RandomForest {
    /// Fits the forest. When the per-tree `max_features` is `usize::MAX`,
    /// it is replaced with `ceil(sqrt(n_features))` — the standard forest
    /// default that decorrelates trees.
    ///
    /// Trees are fitted in parallel; per-tree RNGs are forked from `rng`
    /// up front so results do not depend on thread scheduling.
    pub fn fit(x: &Matrix, y: &[f64], config: &RandomForestConfig, rng: &mut Prng) -> Self {
        assert_eq!(x.rows(), y.len(), "RandomForest::fit: x/y length mismatch");
        assert!(x.rows() > 0, "RandomForest::fit: empty dataset");
        assert!(
            config.n_trees > 0,
            "RandomForest::fit: need at least one tree"
        );
        let mut tree_cfg = config.tree.clone();
        if tree_cfg.max_features == usize::MAX {
            tree_cfg.max_features = (x.cols() as f64).sqrt().ceil() as usize;
        }
        let seeds: Vec<Prng> = (0..config.n_trees).map(|_| rng.fork()).collect();
        let trees: Vec<RegressionTree> = par::par_map(seeds, |mut tree_rng| {
            let rows: Vec<usize> = if config.bootstrap {
                tree_rng.sample_with_replacement(x.rows(), x.rows())
            } else {
                (0..x.rows()).collect()
            };
            RegressionTree::fit(x, y, &rows, &tree_cfg, &mut tree_rng)
        });
        RandomForest { trees }
    }

    /// Predicts a single sample (tree average).
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predicts every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.row_iter().map(|row| self.predict_one(row)).collect()
    }

    /// Per-tree predictions for a sample — the spread across trees is a
    /// cheap uncertainty proxy (infinitesimal-jackknife-style diagnostics).
    pub fn tree_predictions(&self, row: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict_one(row)).collect()
    }

    /// The ensemble's trees, for the flattened batch-traversal converter.
    pub(crate) fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedmanish(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.uniform()).collect())
            .collect();
        let y = rows
            .iter()
            .map(|r| 10.0 * r[0] * r[1] + 5.0 * (r[2] - 0.5).powi(2) + r[3])
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    fn mse(preds: &[f64], y: &[f64]) -> f64 {
        preds
            .iter()
            .zip(y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64
    }

    #[test]
    fn forest_beats_single_tree_out_of_sample() {
        let (x, y) = friedmanish(600, 0);
        let (xt, yt) = friedmanish(200, 1);
        let mut rng = Prng::seed_from_u64(2);
        let forest = RandomForest::fit(&x, &y, &RandomForestConfig::default(), &mut rng);
        let single_cfg = RandomForestConfig {
            n_trees: 1,
            bootstrap: false,
            ..RandomForestConfig::default()
        };
        let single = RandomForest::fit(&x, &y, &single_cfg, &mut rng);
        let forest_mse = mse(&forest.predict(&xt), &yt);
        let single_mse = mse(&single.predict(&xt), &yt);
        assert!(
            forest_mse < single_mse,
            "forest {forest_mse} vs single {single_mse}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = friedmanish(200, 3);
        let fit = |seed| {
            let mut rng = Prng::seed_from_u64(seed);
            RandomForest::fit(&x, &y, &RandomForestConfig::default(), &mut rng).predict(&x)
        };
        assert_eq!(fit(7), fit(7));
    }

    #[test]
    fn tree_predictions_length() {
        let (x, y) = friedmanish(100, 4);
        let cfg = RandomForestConfig {
            n_trees: 13,
            ..RandomForestConfig::default()
        };
        let mut rng = Prng::seed_from_u64(5);
        let forest = RandomForest::fit(&x, &y, &cfg, &mut rng);
        assert_eq!(forest.len(), 13);
        assert_eq!(forest.tree_predictions(x.row(0)).len(), 13);
    }

    #[test]
    fn predicts_roughly_unbiased_mean() {
        let (x, y) = friedmanish(400, 6);
        let mut rng = Prng::seed_from_u64(7);
        let forest = RandomForest::fit(&x, &y, &RandomForestConfig::default(), &mut rng);
        let preds = forest.predict(&x);
        let mean_y: f64 = y.iter().sum::<f64>() / y.len() as f64;
        let mean_p: f64 = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!((mean_y - mean_p).abs() < 0.2, "{mean_y} vs {mean_p}");
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let (x, y) = friedmanish(10, 8);
        let cfg = RandomForestConfig {
            n_trees: 0,
            ..RandomForestConfig::default()
        };
        let _ = RandomForest::fit(&x, &y, &cfg, &mut Prng::seed_from_u64(0));
    }
}
