//! Gradient-boosted regression trees (least-squares boosting).
//!
//! A standard strong base learner for meta-learners: each stage fits a
//! shallow CART tree to the current residuals and is added with a
//! shrinkage factor.

use crate::tree::{RegressionTree, TreeConfig};
use linalg::random::Prng;
use linalg::Matrix;

/// Hyperparameters for gradient boosting.
#[derive(Debug, Clone)]
pub struct GbtConfig {
    /// Number of boosting stages.
    pub n_stages: usize,
    /// Shrinkage (learning rate) applied to each stage.
    pub shrinkage: f64,
    /// Row subsample fraction per stage (stochastic gradient boosting).
    pub subsample: f64,
    /// Per-stage tree settings (depth 3 by default — boosting wants
    /// weak learners).
    pub tree: TreeConfig,
}

tinyjson::json_struct!(GbtConfig {
    n_stages,
    shrinkage,
    subsample,
    tree
});

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_stages: 100,
            shrinkage: 0.1,
            subsample: 0.8,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_split: 10,
                min_samples_leaf: 5,
                max_features: usize::MAX,
                max_thresholds: 16,
            },
        }
    }
}

/// A fitted gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct GradientBoostedTrees {
    base: f64,
    shrinkage: f64,
    stages: Vec<RegressionTree>,
}

tinyjson::json_struct!(GradientBoostedTrees {
    base,
    shrinkage,
    stages
});

impl GradientBoostedTrees {
    /// Fits least-squares boosting on `(x, y)`.
    ///
    /// # Panics
    /// Panics on empty data, length mismatch, or invalid config.
    pub fn fit(x: &Matrix, y: &[f64], config: &GbtConfig, rng: &mut Prng) -> Self {
        assert_eq!(x.rows(), y.len(), "GBT::fit: x/y length mismatch");
        assert!(x.rows() > 0, "GBT::fit: empty dataset");
        assert!(config.n_stages > 0, "GBT::fit: need at least one stage");
        assert!(
            config.subsample > 0.0 && config.subsample <= 1.0,
            "GBT::fit: subsample must be in (0, 1]"
        );
        assert!(
            config.shrinkage > 0.0,
            "GBT::fit: shrinkage must be positive"
        );
        let n = x.rows();
        let base = y.iter().sum::<f64>() / n as f64;
        let mut residuals: Vec<f64> = y.iter().map(|v| v - base).collect();
        let mut stages = Vec::with_capacity(config.n_stages);
        let k = ((n as f64 * config.subsample).round() as usize).clamp(1, n);
        for _ in 0..config.n_stages {
            let rows = if k == n {
                (0..n).collect::<Vec<_>>()
            } else {
                rng.sample_without_replacement(n, k)
            };
            let tree = RegressionTree::fit(x, &residuals, &rows, &config.tree, rng);
            // Update residuals on ALL rows (not just the subsample).
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= config.shrinkage * tree.predict_one(x.row(i));
            }
            stages.push(tree);
        }
        GradientBoostedTrees {
            base,
            shrinkage: config.shrinkage,
            stages,
        }
    }

    /// Predicts a single sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        self.base + self.shrinkage * self.stages.iter().map(|t| t.predict_one(row)).sum::<f64>()
    }

    /// Predicts every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.row_iter().map(|row| self.predict_one(row)).collect()
    }

    /// Number of boosting stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Initial prediction (training-target mean).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Learning rate applied to every stage's contribution.
    pub fn shrinkage(&self) -> f64 {
        self.shrinkage
    }

    /// The boosting stages, for the flattened batch-traversal converter.
    pub(crate) fn stages(&self) -> &[RegressionTree] {
        &self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nonlinear(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.uniform(), rng.uniform()]).collect();
        let y = rows
            .iter()
            .map(|r| (6.0 * r[0]).sin() + 2.0 * (r[1] - 0.5).powi(2))
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    fn mse(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
    }

    #[test]
    fn boosting_fits_nonlinear_surface() {
        let (x, y) = nonlinear(800, 0);
        let mut rng = Prng::seed_from_u64(1);
        let model = GradientBoostedTrees::fit(&x, &y, &GbtConfig::default(), &mut rng);
        let train_mse = mse(&model.predict(&x), &y);
        assert!(train_mse < 0.02, "train MSE {train_mse}");
        // Generalizes out of sample.
        let (xt, yt) = nonlinear(400, 2);
        let test_mse = mse(&model.predict(&xt), &yt);
        assert!(test_mse < 0.05, "test MSE {test_mse}");
    }

    #[test]
    fn more_stages_fit_better() {
        let (x, y) = nonlinear(500, 3);
        let fit_with = |stages: usize| {
            let cfg = GbtConfig {
                n_stages: stages,
                ..GbtConfig::default()
            };
            let mut rng = Prng::seed_from_u64(4);
            let m = GradientBoostedTrees::fit(&x, &y, &cfg, &mut rng);
            mse(&m.predict(&x), &y)
        };
        assert!(fit_with(100) < fit_with(5));
    }

    #[test]
    fn single_stage_with_no_shrinkage_is_mean_plus_tree() {
        let (x, y) = nonlinear(200, 5);
        let cfg = GbtConfig {
            n_stages: 1,
            shrinkage: 1.0,
            subsample: 1.0,
            ..GbtConfig::default()
        };
        let mut rng = Prng::seed_from_u64(6);
        let m = GradientBoostedTrees::fit(&x, &y, &cfg, &mut rng);
        assert_eq!(m.n_stages(), 1);
        // Prediction mean equals target mean up to tree granularity.
        let mean_y = y.iter().sum::<f64>() / y.len() as f64;
        let preds = m.predict(&x);
        let mean_p = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!((mean_p - mean_y).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        let (x, y) = nonlinear(50, 7);
        let cfg = GbtConfig {
            n_stages: 0,
            ..GbtConfig::default()
        };
        let _ = GradientBoostedTrees::fit(&x, &y, &cfg, &mut Prng::seed_from_u64(0));
    }
}
