//! Honest causal trees and causal forests (Wager & Athey 2018 style).
//!
//! A causal tree predicts the Conditional Average Treatment Effect
//! `τ(x) = E[Y(1) − Y(0) | X = x]` from RCT data. Two departures from CART:
//!
//! * **Split criterion** — instead of variance reduction on `y`, a split is
//!   scored by the heterogeneity of the children's effect estimates,
//!   `n_L · τ̂_L² + n_R · τ̂_R²` (the Athey–Imbens proxy for CATE MSE
//!   improvement under an RCT).
//! * **Honesty** — each tree's training rows are split in half: the *split*
//!   half chooses the structure, the *estimation* half supplies the leaf
//!   effect estimates `ȳ₁ − ȳ₀`. This removes the adaptive bias of
//!   estimating effects on the same data that chose the splits.

use crate::split::{candidate_thresholds, feature_subset, gather_feature, partition, Split};
use linalg::random::Prng;
use linalg::Matrix;
use tinyjson::{FromJson, JsonError, ToJson, Value};

/// Hyperparameters for a causal tree.
#[derive(Debug, Clone)]
pub struct CausalTreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum *treated and control* samples in each child (ensures every
    /// leaf can estimate an effect).
    pub min_group_leaf: usize,
    /// Features considered per split (`usize::MAX` = all).
    pub max_features: usize,
    /// Candidate thresholds per feature.
    pub max_thresholds: usize,
    /// Honest estimation: reserve half the rows for leaf estimates.
    pub honest: bool,
}

tinyjson::json_struct!(CausalTreeConfig {
    max_depth,
    min_group_leaf,
    max_features,
    max_thresholds,
    honest
});

impl Default for CausalTreeConfig {
    fn default() -> Self {
        CausalTreeConfig {
            max_depth: 6,
            min_group_leaf: 10,
            max_features: usize::MAX,
            max_thresholds: 16,
            honest: true,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        tau: f64,
    },
    Internal {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

impl ToJson for Node {
    fn to_json(&self) -> Value {
        match self {
            Node::Leaf { tau } => Value::Obj(vec![("Leaf".to_string(), tau.to_json())]),
            Node::Internal {
                feature,
                threshold,
                left,
                right,
            } => Value::Obj(vec![(
                "Split".to_string(),
                Value::Arr(vec![
                    feature.to_json(),
                    threshold.to_json(),
                    left.to_json(),
                    right.to_json(),
                ]),
            )]),
        }
    }
}

impl FromJson for Node {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v.as_obj()? {
            [(tag, inner)] if tag == "Leaf" => Ok(Node::Leaf {
                tau: inner.as_f64()?,
            }),
            [(tag, inner)] if tag == "Split" => match inner.as_arr()? {
                [feature, threshold, left, right] => Ok(Node::Internal {
                    feature: usize::from_json(feature)?,
                    threshold: threshold.as_f64()?,
                    left: usize::from_json(left)?,
                    right: usize::from_json(right)?,
                }),
                _ => Err(JsonError::msg(
                    "Node::Split: expected [feature, threshold, left, right]",
                )),
            },
            _ => Err(JsonError::msg(
                "Node: expected {\"Leaf\": ...} or {\"Split\": ...}",
            )),
        }
    }
}

/// A fitted honest causal tree.
#[derive(Debug, Clone)]
pub struct CausalTree {
    nodes: Vec<Node>,
    n_features: usize,
}

tinyjson::json_struct!(CausalTree { nodes, n_features });

struct Ctx<'a> {
    x: &'a Matrix,
    t: &'a [u8],
    y: &'a [f64],
    config: &'a CausalTreeConfig,
}

/// Difference-in-means effect estimate over `rows`; `None` when either
/// group is empty.
fn tau_hat(t: &[u8], y: &[f64], rows: &[usize]) -> Option<f64> {
    let (mut n1, mut n0) = (0usize, 0usize);
    let (mut s1, mut s0) = (0.0, 0.0);
    for &r in rows {
        if t[r] == 1 {
            n1 += 1;
            s1 += y[r];
        } else {
            n0 += 1;
            s0 += y[r];
        }
    }
    if n1 == 0 || n0 == 0 {
        None
    } else {
        Some(s1 / n1 as f64 - s0 / n0 as f64)
    }
}

fn group_counts(t: &[u8], rows: &[usize]) -> (usize, usize) {
    let n1 = rows.iter().filter(|&&r| t[r] == 1).count();
    (n1, rows.len() - n1)
}

impl CausalTree {
    /// Fits an honest causal tree on rows `rows` of RCT data `(x, t, y)`.
    ///
    /// # Panics
    /// Panics on length mismatches or an empty/one-group sample.
    pub fn fit(
        x: &Matrix,
        t: &[u8],
        y: &[f64],
        rows: &[usize],
        config: &CausalTreeConfig,
        rng: &mut Prng,
    ) -> Self {
        assert_eq!(x.rows(), y.len(), "CausalTree::fit: x/y length mismatch");
        assert_eq!(t.len(), y.len(), "CausalTree::fit: t/y length mismatch");
        assert!(!rows.is_empty(), "CausalTree::fit: empty sample");
        let overall =
            tau_hat(t, y, rows).expect("CausalTree::fit: need both treated and control samples");

        // Honest split: half the rows choose structure, half estimate.
        let (split_rows, est_rows): (Vec<usize>, Vec<usize>) = if config.honest {
            let mut shuffled = rows.to_vec();
            rng.shuffle(&mut shuffled);
            let mid = shuffled.len() / 2;
            let est = shuffled.split_off(mid);
            (shuffled, est)
        } else {
            (rows.to_vec(), rows.to_vec())
        };

        let mut tree = CausalTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        let ctx = Ctx { x, t, y, config };
        tree.grow(&ctx, &split_rows, &est_rows, overall, 0, rng);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        ctx: &Ctx<'_>,
        split_rows: &[usize],
        est_rows: &[usize],
        parent_tau: f64,
        depth: usize,
        rng: &mut Prng,
    ) -> usize {
        // Leaf estimate always comes from the estimation half; fall back to
        // the parent's estimate when the leaf lacks one of the groups.
        let leaf_tau = tau_hat(ctx.t, ctx.y, est_rows).unwrap_or(parent_tau);
        if depth >= ctx.config.max_depth {
            return self.push_leaf(leaf_tau);
        }
        let (n1, n0) = group_counts(ctx.t, split_rows);
        if n1 < 2 * ctx.config.min_group_leaf || n0 < 2 * ctx.config.min_group_leaf {
            return self.push_leaf(leaf_tau);
        }
        match self.best_split(ctx, split_rows, rng) {
            None => self.push_leaf(leaf_tau),
            Some(split) => {
                let (sl, sr) = partition(ctx.x, split_rows, &split);
                let (el, er) = partition(ctx.x, est_rows, &split);
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { tau: leaf_tau }); // placeholder
                let left = self.grow(ctx, &sl, &el, leaf_tau, depth + 1, rng);
                let right = self.grow(ctx, &sr, &er, leaf_tau, depth + 1, rng);
                self.nodes[id] = Node::Internal {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                id
            }
        }
    }

    fn push_leaf(&mut self, tau: f64) -> usize {
        self.nodes.push(Node::Leaf { tau });
        self.nodes.len() - 1
    }

    /// Best heterogeneity split on the split half, or `None`.
    fn best_split(&self, ctx: &Ctx<'_>, rows: &[usize], rng: &mut Prng) -> Option<Split> {
        let parent = tau_hat(ctx.t, ctx.y, rows)?;
        let parent_score = rows.len() as f64 * parent * parent;
        let min_g = ctx.config.min_group_leaf;
        let mut best: Option<Split> = None;
        for feature in feature_subset(ctx.x.cols(), ctx.config.max_features, rng) {
            let values = gather_feature(ctx.x, rows, feature);
            for threshold in candidate_thresholds(&values, ctx.config.max_thresholds) {
                // One pass: per-side, per-group counts and sums.
                let (mut n1l, mut n0l) = (0usize, 0usize);
                let (mut s1l, mut s0l) = (0.0, 0.0);
                let (mut n1r, mut n0r) = (0usize, 0usize);
                let (mut s1r, mut s0r) = (0.0, 0.0);
                for (&v, &r) in values.iter().zip(rows) {
                    let treated = ctx.t[r] == 1;
                    let y = ctx.y[r];
                    if v <= threshold {
                        if treated {
                            n1l += 1;
                            s1l += y;
                        } else {
                            n0l += 1;
                            s0l += y;
                        }
                    } else if treated {
                        n1r += 1;
                        s1r += y;
                    } else {
                        n0r += 1;
                        s0r += y;
                    }
                }
                if n1l < min_g || n0l < min_g || n1r < min_g || n0r < min_g {
                    continue;
                }
                let tau_l = s1l / n1l as f64 - s0l / n0l as f64;
                let tau_r = s1r / n1r as f64 - s0r / n0r as f64;
                let nl = (n1l + n0l) as f64;
                let nr = (n1r + n0r) as f64;
                let gain = nl * tau_l * tau_l + nr * tau_r * tau_r - parent_score;
                if gain > 1e-12 && best.is_none_or(|b| gain > b.gain) {
                    best = Some(Split {
                        feature,
                        threshold,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// CATE prediction for one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "predict_one: feature mismatch");
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                Node::Leaf { tau } => return *tau,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// CATE predictions for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.row_iter().map(|row| self.predict_one(row)).collect()
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Feature dimension this tree was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Arena nodes, for the flattened batch-traversal converter.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

/// Hyperparameters for a causal forest.
#[derive(Debug, Clone)]
pub struct CausalForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree settings.
    pub tree: CausalTreeConfig,
    /// Subsample fraction per tree (without replacement — the causal-forest
    /// convention, which the jackknife variance theory assumes).
    pub subsample: f64,
}

tinyjson::json_struct!(CausalForestConfig {
    n_trees,
    tree,
    subsample
});

impl Default for CausalForestConfig {
    fn default() -> Self {
        CausalForestConfig {
            n_trees: 50,
            tree: CausalTreeConfig::default(),
            subsample: 0.5,
        }
    }
}

/// A bagged ensemble of honest causal trees predicting CATE.
#[derive(Debug, Clone)]
pub struct CausalForest {
    trees: Vec<CausalTree>,
}

tinyjson::json_struct!(CausalForest { trees });

impl CausalForest {
    /// Fits the forest on RCT data. Per-tree feature subsampling defaults
    /// to `ceil(sqrt(d))` when the config leaves `max_features` at max.
    pub fn fit(
        x: &Matrix,
        t: &[u8],
        y: &[f64],
        config: &CausalForestConfig,
        rng: &mut Prng,
    ) -> Self {
        assert!(
            config.n_trees > 0,
            "CausalForest::fit: need at least one tree"
        );
        assert!(
            (0.0..=1.0).contains(&config.subsample) && config.subsample > 0.0,
            "CausalForest::fit: subsample must be in (0, 1]"
        );
        let mut tree_cfg = config.tree.clone();
        if tree_cfg.max_features == usize::MAX {
            tree_cfg.max_features = (x.cols() as f64).sqrt().ceil() as usize;
        }
        let n = x.rows();
        let k = ((n as f64 * config.subsample).round() as usize).clamp(1, n);
        let seeds: Vec<Prng> = (0..config.n_trees).map(|_| rng.fork()).collect();
        let trees: Vec<CausalTree> = par::par_map(seeds, |mut tree_rng| {
            // Resample until the subsample has both groups (cheap: RCT
            // data has both in abundance).
            let rows = loop {
                let rows = tree_rng.sample_without_replacement(n, k);
                let (n1, n0) = group_counts(t, &rows);
                if n1 > 0 && n0 > 0 {
                    break rows;
                }
            };
            CausalTree::fit(x, t, y, &rows, &tree_cfg, &mut tree_rng)
        });
        CausalForest { trees }
    }

    /// CATE prediction (tree average) for one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// CATE predictions for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.row_iter().map(|row| self.predict_one(row)).collect()
    }

    /// Per-tree predictions (spread = jackknife-style variance proxy).
    pub fn tree_predictions(&self, row: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict_one(row)).collect()
    }

    /// The ensemble's trees, for the flattened batch-traversal converter.
    pub(crate) fn trees(&self) -> &[CausalTree] {
        &self.trees
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is empty (never after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RCT with heterogeneous effect tau(x) = 2 x0 (x0 in [0,1]) and noise.
    fn rct(n: usize, seed: u64) -> (Matrix, Vec<u8>, Vec<f64>, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ts = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut taus = Vec::with_capacity(n);
        for _ in 0..n {
            let x0 = rng.uniform();
            let x1 = rng.uniform();
            let t = u8::from(rng.bernoulli(0.5));
            let tau = 2.0 * x0;
            let base = x1; // prognostic effect independent of tau
            let y = base + tau * t as f64 + 0.1 * rng.gaussian();
            xs.push(vec![x0, x1]);
            ts.push(t);
            ys.push(y);
            taus.push(tau);
        }
        (Matrix::from_rows(&xs), ts, ys, taus)
    }

    #[test]
    fn single_tree_recovers_effect_direction() {
        let (x, t, y, _) = rct(2000, 0);
        let rows: Vec<usize> = (0..x.rows()).collect();
        let mut rng = Prng::seed_from_u64(1);
        let tree = CausalTree::fit(&x, &t, &y, &rows, &CausalTreeConfig::default(), &mut rng);
        // tau(0.9) ~ 1.8 should exceed tau(0.1) ~ 0.2.
        let hi = tree.predict_one(&[0.9, 0.5]);
        let lo = tree.predict_one(&[0.1, 0.5]);
        assert!(hi > lo + 0.5, "hi {hi} lo {lo}");
    }

    #[test]
    fn forest_estimates_cate_pointwise() {
        let (x, t, y, taus) = rct(4000, 2);
        let mut rng = Prng::seed_from_u64(3);
        let forest = CausalForest::fit(&x, &t, &y, &CausalForestConfig::default(), &mut rng);
        let preds = forest.predict(&x);
        // Correlation with the true tau should be strong.
        let corr = linalg::stats::pearson(&preds, &taus);
        assert!(corr > 0.8, "corr = {corr}");
        // Mean effect roughly 1.0 (E[2 x0] = 1).
        let mean_pred: f64 = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!((mean_pred - 1.0).abs() < 0.15, "mean = {mean_pred}");
    }

    #[test]
    fn honest_tree_differs_from_adaptive() {
        let (x, t, y, _) = rct(1000, 4);
        let rows: Vec<usize> = (0..x.rows()).collect();
        let honest_cfg = CausalTreeConfig::default();
        let adaptive_cfg = CausalTreeConfig {
            honest: false,
            ..CausalTreeConfig::default()
        };
        let mut r1 = Prng::seed_from_u64(5);
        let mut r2 = Prng::seed_from_u64(5);
        let honest = CausalTree::fit(&x, &t, &y, &rows, &honest_cfg, &mut r1);
        let adaptive = CausalTree::fit(&x, &t, &y, &rows, &adaptive_cfg, &mut r2);
        assert_ne!(honest.predict(&x), adaptive.predict(&x));
    }

    #[test]
    fn homogeneous_effect_yields_flat_predictions() {
        // tau(x) = 1 for everyone; splits should find little heterogeneity.
        let mut rng = Prng::seed_from_u64(6);
        let n = 2000;
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.uniform(), rng.uniform()]).collect();
        let ts: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let ys: Vec<f64> = xs
            .iter()
            .zip(&ts)
            .map(|(_x, &t)| 1.0 * t as f64 + 0.05 * rng.gaussian())
            .collect();
        let x = Matrix::from_rows(&xs);
        let forest = CausalForest::fit(&x, &ts, &ys, &CausalForestConfig::default(), &mut rng);
        let preds = forest.predict(&x);
        let spread = linalg::stats::std_dev(&preds);
        let mean: f64 = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean = {mean}");
        assert!(spread < 0.15, "spread = {spread}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, t, y, _) = rct(500, 7);
        let run = |seed| {
            let mut rng = Prng::seed_from_u64(seed);
            CausalForest::fit(&x, &t, &y, &CausalForestConfig::default(), &mut rng).predict(&x)
        };
        assert_eq!(run(8), run(8));
    }

    #[test]
    #[should_panic(expected = "both treated and control")]
    fn single_group_panics() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let t = vec![1u8, 1];
        let y = vec![1.0, 2.0];
        let rows = vec![0, 1];
        let mut rng = Prng::seed_from_u64(0);
        let _ = CausalTree::fit(&x, &t, &y, &rows, &CausalTreeConfig::default(), &mut rng);
    }
}
