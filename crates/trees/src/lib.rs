//! Tree ensembles: CART regression trees, bagged random forests, and
//! honest causal forests.
//!
//! These serve two roles in the reproduction:
//!
//! * base regressors for the meta-learner baselines (S-/T-/X-learner need
//!   an outcome model; we offer ridge and forests),
//! * the TPM-CF baseline of Table I, which ranks individuals by the ratio
//!   of two causal-forest CATE estimates (revenue uplift / cost uplift).
//!
//! The causal tree follows Athey & Imbens' *honest* recipe: the training
//! split is divided into a split half (chooses the tree structure by
//! maximizing effect heterogeneity) and an estimation half (provides the
//! leaf-level treatment-effect estimates), which removes the adaptive
//! overfitting bias of reusing the same data for both.

pub mod batch;
pub mod causal;
pub mod forest;
pub mod gbt;
pub mod split;
pub mod tree;

pub use batch::{BlockScratch, FlatCausalForest, FlatForest, FlatGbt, FlatTree};
pub use causal::{CausalForest, CausalForestConfig, CausalTree};
pub use forest::{RandomForest, RandomForestConfig};
pub use gbt::{GbtConfig, GradientBoostedTrees};
pub use tree::{RegressionTree, TreeConfig};
