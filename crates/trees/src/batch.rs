//! Breadth-first, level-order batch tree traversal over columnar row
//! blocks.
//!
//! Per-row recursive traversal (`predict_one` in a loop) chases one
//! pointer per level per row and touches the feature matrix row-major —
//! for a forest of `T` trees over `n` rows that is `T·n` dependent
//! pointer chains with no memory-level parallelism. This module flattens
//! each tree's arena into structure-of-arrays node vectors
//! ([`FlatTree`]) and advances **all still-active rows one level at a
//! time**. The frontier is kept as contiguous *segments* of a row-index
//! permutation, one per live node: within a segment the split feature
//! and threshold are loop constants, so each level is a handful of tight
//! branch-free partition loops that stream one [`FeatureBlock`] column in
//! ascending row order — instead of `n` interleaved per-row descents
//! that hop between columns.
//!
//! Numerics contract: thresholds stay `f64`, and each row's comparisons
//! are `(x as f64) <= threshold` — exactly the operations `predict_one`
//! performs on the f32-cast row — so flat traversal is **bitwise equal**
//! to recursive traversal over the same f32-rounded inputs. Ensemble
//! combination preserves the recursive accumulation order too: forests
//! sum tree values in tree order then divide by the tree count, GBT
//! computes `base + shrinkage · (stage sum)` — the same expressions as
//! [`RandomForest::predict_one`] / [`GradientBoostedTrees::predict_one`].

use crate::causal::{self, CausalForest, CausalTree};
use crate::forest::RandomForest;
use crate::gbt::GradientBoostedTrees;
use crate::tree::{self, RegressionTree};
use linalg::block::FeatureBlock;

/// Sentinel in [`FlatTree`]'s `left` array marking a leaf node.
const LEAF: u32 = u32::MAX;

/// A decision tree flattened into structure-of-arrays node vectors.
///
/// `left[i] == u32::MAX` marks node `i` as a leaf whose prediction is
/// `value[i]`; internal nodes route on `feature[i]`/`threshold[i]`.
#[derive(Debug, Clone)]
pub struct FlatTree {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    value: Vec<f64>,
    n_features: usize,
}

impl FlatTree {
    fn with_capacity(n: usize, n_features: usize) -> Self {
        FlatTree {
            feature: Vec::with_capacity(n),
            threshold: Vec::with_capacity(n),
            left: Vec::with_capacity(n),
            right: Vec::with_capacity(n),
            value: Vec::with_capacity(n),
            n_features,
        }
    }

    fn push_leaf(&mut self, value: f64) {
        self.feature.push(0);
        self.threshold.push(0.0);
        self.left.push(LEAF);
        self.right.push(LEAF);
        self.value.push(value);
    }

    fn push_internal(&mut self, feature: usize, threshold: f64, left: usize, right: usize) {
        self.feature.push(feature as u32);
        self.threshold.push(threshold);
        self.left.push(left as u32);
        self.right.push(right as u32);
        self.value.push(0.0);
    }

    /// Flattens a fitted [`RegressionTree`] (same node indices, same
    /// routing decisions).
    pub fn from_regression(t: &RegressionTree) -> Self {
        let nodes = t.nodes();
        let mut flat = FlatTree::with_capacity(nodes.len(), t.n_features());
        for node in nodes {
            match node {
                tree::Node::Leaf { value } => flat.push_leaf(*value),
                tree::Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => flat.push_internal(*feature, *threshold, *left, *right),
            }
        }
        flat
    }

    /// Flattens a fitted [`CausalTree`] (leaf values are CATE estimates).
    pub fn from_causal(t: &CausalTree) -> Self {
        let nodes = t.nodes();
        let mut flat = FlatTree::with_capacity(nodes.len(), t.n_features());
        for node in nodes {
            match node {
                causal::Node::Leaf { tau } => flat.push_leaf(*tau),
                causal::Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => flat.push_internal(*feature, *threshold, *left, *right),
            }
        }
        flat
    }

    /// Feature dimension the tree expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Level-order traversal: adds this tree's prediction for every
    /// logical row of `x` into `acc`, allocating fresh scratch buffers.
    /// Scoring loops over many trees should allocate one [`BlockScratch`]
    /// and call [`FlatTree::accumulate_block_with`] instead.
    ///
    /// # Panics
    /// Panics when `x` has the wrong number of features or `acc` the
    /// wrong number of rows.
    pub fn accumulate_block(&self, x: &FeatureBlock, acc: &mut [f64]) {
        self.accumulate_block_with(x, acc, &mut BlockScratch::new());
    }

    /// Level-order traversal with caller-owned scratch.
    ///
    /// The frontier is a list of *segments* — `(node, row range)` pairs
    /// over a row-index permutation — rather than a per-row node array:
    /// inside one segment the split feature and threshold are fixed, so
    /// the partition loop reads a single feature column in ascending row
    /// order (the stable partition keeps child segments ascending too)
    /// and runs branch-free by writing left-goers and right-goers through
    /// two cursors. Rows reaching a leaf flush `value` into `acc` and
    /// drop off the frontier.
    ///
    /// # Panics
    /// Panics when `x` has the wrong number of features or `acc` the
    /// wrong number of rows.
    pub fn accumulate_block_with(
        &self,
        x: &FeatureBlock,
        acc: &mut [f64],
        scratch: &mut BlockScratch,
    ) {
        assert_eq!(
            x.cols(),
            self.n_features,
            "FlatTree::accumulate_block: expected {} features, got {}",
            self.n_features,
            x.cols()
        );
        assert_eq!(
            acc.len(),
            x.rows(),
            "FlatTree::accumulate_block: accumulator has {} rows, block has {}",
            acc.len(),
            x.rows()
        );
        let n = x.rows();
        let BlockScratch {
            rows,
            next,
            right_tmp,
            segs,
            next_segs,
        } = scratch;
        rows.clear();
        rows.extend(0..n as u32);
        next.clear();
        next.resize(n, 0);
        right_tmp.clear();
        right_tmp.resize(n, 0);
        segs.clear();
        segs.push(Segment {
            node: 0,
            start: 0,
            end: n as u32,
        });
        while !segs.is_empty() {
            let mut w = 0usize;
            next_segs.clear();
            for seg in segs.iter() {
                let nd = seg.node as usize;
                let seg_rows = &rows[seg.start as usize..seg.end as usize];
                if self.left[nd] == LEAF {
                    let val = self.value[nd];
                    for &r in seg_rows {
                        acc[r as usize] += val;
                    }
                    continue;
                }
                let col = x.col(self.feature[nd] as usize);
                let thr = self.threshold[nd];
                // Branch-free stable partition: every row is written to
                // both buffers, and only the matching cursor advances.
                // `li` stays below `base + len(seg_rows) <= n` and `ti`
                // below `len(seg_rows)`, so the unconditional writes stay
                // in bounds.
                let base = w;
                let mut li = w;
                let mut ti = 0usize;
                for &r in seg_rows {
                    // f32 feature widened to f64 against the f64
                    // threshold — identical to predict_one on the
                    // f32-cast row.
                    let go_left = f64::from(col[r as usize]) <= thr;
                    next[li] = r;
                    right_tmp[ti] = r;
                    li += usize::from(go_left);
                    ti += usize::from(!go_left);
                }
                next[li..li + ti].copy_from_slice(&right_tmp[..ti]);
                w = li + ti;
                if li > base {
                    next_segs.push(Segment {
                        node: self.left[nd],
                        start: base as u32,
                        end: li as u32,
                    });
                }
                if ti > 0 {
                    next_segs.push(Segment {
                        node: self.right[nd],
                        start: li as u32,
                        end: w as u32,
                    });
                }
            }
            std::mem::swap(rows, next);
            std::mem::swap(segs, next_segs);
        }
    }
}

/// One frontier entry of the level-order traversal: all rows in
/// `rows[start..end]` (a [`BlockScratch`] permutation range) currently
/// sit at `node`.
#[derive(Debug, Clone, Copy)]
struct Segment {
    node: u32,
    start: u32,
    end: u32,
}

/// Reusable scratch for [`FlatTree::accumulate_block_with`]: the
/// row-index permutation ping-pong buffers and the per-level segment
/// lists. Allocate once per scoring loop and reuse across trees — the
/// buffers grow to the block's row count and stay there.
#[derive(Debug, Default)]
pub struct BlockScratch {
    /// Current level's row permutation, segment-contiguous.
    rows: Vec<u32>,
    /// Next level's permutation, written during partitioning.
    next: Vec<u32>,
    /// Right-going rows of the segment being partitioned.
    right_tmp: Vec<u32>,
    /// Current level's frontier.
    segs: Vec<Segment>,
    /// Next level's frontier.
    next_segs: Vec<Segment>,
}

impl BlockScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BlockScratch::default()
    }
}

/// A [`RandomForest`] flattened for level-order batch scoring.
#[derive(Debug, Clone)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
}

impl FlatForest {
    /// Flattens every tree of a fitted forest.
    pub fn from_forest(f: &RandomForest) -> Self {
        FlatForest {
            trees: f.trees().iter().map(FlatTree::from_regression).collect(),
        }
    }

    /// Tree-average prediction for every logical row of `x` — bitwise
    /// equal to [`RandomForest::predict`] over the same f32-cast rows
    /// (trees accumulate in order, one final division).
    pub fn predict_block(&self, x: &FeatureBlock) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        let mut scratch = BlockScratch::new();
        for t in &self.trees {
            t.accumulate_block_with(x, &mut acc, &mut scratch);
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

/// A [`CausalForest`] flattened for level-order batch CATE scoring.
#[derive(Debug, Clone)]
pub struct FlatCausalForest {
    trees: Vec<FlatTree>,
}

impl FlatCausalForest {
    /// Flattens every causal tree of a fitted forest.
    pub fn from_forest(f: &CausalForest) -> Self {
        FlatCausalForest {
            trees: f.trees().iter().map(FlatTree::from_causal).collect(),
        }
    }

    /// Tree-average CATE for every logical row of `x` — bitwise equal to
    /// [`CausalForest::predict`] over the same f32-cast rows.
    pub fn predict_block(&self, x: &FeatureBlock) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        let mut scratch = BlockScratch::new();
        for t in &self.trees {
            t.accumulate_block_with(x, &mut acc, &mut scratch);
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

/// A [`GradientBoostedTrees`] ensemble flattened for level-order batch
/// scoring.
#[derive(Debug, Clone)]
pub struct FlatGbt {
    base: f64,
    shrinkage: f64,
    stages: Vec<FlatTree>,
}

impl FlatGbt {
    /// Flattens every boosting stage.
    pub fn from_gbt(g: &GradientBoostedTrees) -> Self {
        FlatGbt {
            base: g.base(),
            shrinkage: g.shrinkage(),
            stages: g.stages().iter().map(FlatTree::from_regression).collect(),
        }
    }

    /// Boosted prediction for every logical row of `x` — bitwise equal
    /// to [`GradientBoostedTrees::predict`] over the same f32-cast rows
    /// (`base + shrinkage · stage sum`, stages accumulated in order).
    pub fn predict_block(&self, x: &FeatureBlock) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        let mut scratch = BlockScratch::new();
        for t in &self.stages {
            t.accumulate_block_with(x, &mut acc, &mut scratch);
        }
        for a in &mut acc {
            *a = self.base + self.shrinkage * *a;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::CausalForestConfig;
    use crate::forest::RandomForestConfig;
    use crate::gbt::GbtConfig;
    use crate::tree::TreeConfig;
    use linalg::random::Prng;
    use linalg::Matrix;

    /// Casts a matrix through f32 and back — the rows both traversal
    /// paths must agree on bitwise.
    fn f32_rounded(x: &Matrix) -> Matrix {
        x.map(|v| v as f32 as f64)
    }

    fn dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = Matrix::from_vec(n, d, rng.gaussian_vec(n * d));
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let r = x.row(i);
                r[0] * 2.0 + (r[1] * 3.0).sin() + 0.1 * rng.gaussian()
            })
            .collect();
        (x, y)
    }

    #[test]
    fn flat_tree_matches_recursive_bitwise() {
        let (x, y) = dataset(300, 4, 0);
        let mut rng = Prng::seed_from_u64(1);
        let tree = RegressionTree::fit_all(&x, &y, &TreeConfig::default(), &mut rng);
        let flat = FlatTree::from_regression(&tree);
        let xr = f32_rounded(&x);
        let want = tree.predict(&xr);
        let mut acc = vec![0.0; x.rows()];
        flat.accumulate_block(&FeatureBlock::from_matrix(&x), &mut acc);
        assert_eq!(acc, want);
    }

    #[test]
    fn flat_forest_matches_recursive_bitwise() {
        let (x, y) = dataset(257, 5, 2); // not a multiple of the tile
        let cfg = RandomForestConfig {
            n_trees: 17,
            ..RandomForestConfig::default()
        };
        let mut rng = Prng::seed_from_u64(3);
        let forest = RandomForest::fit(&x, &y, &cfg, &mut rng);
        let flat = FlatForest::from_forest(&forest);
        let want = forest.predict(&f32_rounded(&x));
        let got = flat.predict_block(&FeatureBlock::from_matrix(&x));
        assert_eq!(got, want);
    }

    #[test]
    fn flat_gbt_matches_recursive_bitwise() {
        let (x, y) = dataset(200, 3, 4);
        let cfg = GbtConfig {
            n_stages: 25,
            ..GbtConfig::default()
        };
        let mut rng = Prng::seed_from_u64(5);
        let gbt = GradientBoostedTrees::fit(&x, &y, &cfg, &mut rng);
        let flat = FlatGbt::from_gbt(&gbt);
        let want = gbt.predict(&f32_rounded(&x));
        let got = flat.predict_block(&FeatureBlock::from_matrix(&x));
        assert_eq!(got, want);
    }

    #[test]
    fn flat_causal_forest_matches_recursive_bitwise() {
        let (x, _) = dataset(400, 4, 6);
        let mut rng = Prng::seed_from_u64(7);
        let t: Vec<u8> = (0..400).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let y: Vec<f64> = (0..400)
            .map(|i| x.get(i, 0) + f64::from(t[i]) * (1.0 + x.get(i, 1)) + 0.1 * rng.gaussian())
            .collect();
        let cfg = CausalForestConfig {
            n_trees: 11,
            ..CausalForestConfig::default()
        };
        let forest = CausalForest::fit(&x, &t, &y, &cfg, &mut rng);
        let flat = FlatCausalForest::from_forest(&forest);
        let want = forest.predict(&f32_rounded(&x));
        let got = flat.predict_block(&FeatureBlock::from_matrix(&x));
        assert_eq!(got, want);
    }

    #[test]
    fn single_leaf_tree_and_empty_block() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = vec![3.0, 3.0];
        let mut rng = Prng::seed_from_u64(8);
        let tree = RegressionTree::fit_all(&x, &y, &TreeConfig::default(), &mut rng);
        let flat = FlatTree::from_regression(&tree);
        let mut acc = vec![0.0; 2];
        flat.accumulate_block(&FeatureBlock::from_matrix(&x), &mut acc);
        assert_eq!(acc, vec![3.0, 3.0]);
        // Zero rows: nothing to do, nothing panics.
        let mut empty: Vec<f64> = Vec::new();
        flat.accumulate_block(&FeatureBlock::from_matrix(&Matrix::zeros(0, 1)), &mut empty);
        assert!(empty.is_empty());
    }
}
