//! Seedable randomness helpers.
//!
//! Every stochastic component in the reproduction (weight initialization,
//! minibatch shuffling, dropout masks, dataset generation, bootstrap
//! resampling) goes through this module so experiments are reproducible
//! from a single seed.
//!
//! The generator is an in-crate xoshiro256++ (Blackman & Vigna), seeded
//! through SplitMix64 so any 64-bit seed expands to a well-mixed 256-bit
//! state. No external RNG crate is involved, so streams are stable across
//! toolchains and platforms.

/// A seedable RNG with the sampling primitives the reproduction needs.
#[derive(Debug, Clone)]
pub struct Prng {
    state: [u64; 4],
    // Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Prng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child RNG (useful for handing out per-model
    /// streams without correlating their draws).
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits; exact multiples of 2^-53 in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: n must be positive");
        // Lemire's multiply-shift; the bias is < n / 2^64, far below any
        // statistical test's resolution at our sample counts.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box-Muller: u1 in (0,1] to keep ln finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn gaussian_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Vector of `n` standard normal samples.
    pub fn gaussian_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.gaussian()).collect()
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Samples `k` distinct indices from `0..n` (order arbitrary).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher-Yates: only the first k positions are needed.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Samples `k` indices from `0..n` with replacement (bootstrap).
    ///
    /// # Panics
    /// Panics if `n == 0` and `k > 0`.
    pub fn sample_with_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k == 0 {
            return Vec::new();
        }
        assert!(n > 0, "cannot bootstrap from an empty set");
        (0..k).map(|_| self.below(n)).collect()
    }

    /// Draws an index in `0..weights.len()` with probability proportional
    /// to `weights` (negative weights are treated as zero).
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "weighted_index: weights sum to zero");
        let mut u = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w.max(0.0);
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};

    #[test]
    fn deterministic_given_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = Prng::seed_from_u64(7);
        let mut child = a.fork();
        let x: Vec<f64> = (0..16).map(|_| a.uniform()).collect();
        let y: Vec<f64> = (0..16).map(|_| child.uniform()).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Prng::seed_from_u64(42);
        let samples = rng.gaussian_vec(50_000);
        assert!(mean(&samples).abs() < 0.02, "mean = {}", mean(&samples));
        assert!((std_dev(&samples) - 1.0).abs() < 0.02);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Prng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn uniform_moments() {
        let mut rng = Prng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.uniform()).collect();
        assert!((mean(&samples) - 0.5).abs() < 0.01);
        assert!(samples.iter().all(|&u| (0.0..1.0).contains(&u)));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = Prng::seed_from_u64(3);
        let p = rng.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = Prng::seed_from_u64(4);
        let s = rng.sample_without_replacement(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_without_replacement_overdraw_panics() {
        Prng::seed_from_u64(0).sample_without_replacement(3, 4);
    }

    #[test]
    fn bootstrap_covers_range() {
        let mut rng = Prng::seed_from_u64(5);
        let s = rng.sample_with_replacement(10, 1000);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&i| i < 10));
        assert!(rng.sample_with_replacement(0, 0).is_empty());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Prng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Prng::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.below(7)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 / 10_000.0 - 1.0).abs() < 0.06,
                "counts = {counts:?}"
            );
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Prng::seed_from_u64(8);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio = {ratio}");
    }
}
