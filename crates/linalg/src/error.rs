//! Error type shared by fallible numeric routines.

use std::fmt;

/// Errors produced by numeric routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that went non-positive.
        pivot: usize,
    },
    /// An input that must be non-empty was empty.
    Empty {
        /// Which input was empty.
        what: &'static str,
    },
    /// A probability/level parameter fell outside its valid open interval.
    InvalidLevel {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, lhs, rhs } => {
                write!(
                    f,
                    "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                    lhs.0, lhs.1, rhs.0, rhs.1
                )?;
                // Inner-product ops pair lhs columns with rhs rows; name
                // the exact dimensions that disagree so the message
                // points at the bug, not just the shapes.
                if matches!(*op, "matmul" | "matmul_into" | "matvec") {
                    write!(f, " (lhs has {} columns but rhs has {} rows)", lhs.1, rhs.0)?;
                }
                Ok(())
            }
            Error::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            Error::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            Error::Empty { what } => write!(f, "{what} must be non-empty"),
            Error::InvalidLevel { value } => {
                write!(f, "level must lie in (0, 1), got {value}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
