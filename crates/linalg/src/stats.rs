//! Summary statistics and quantiles.
//!
//! Includes the *finite-sample conformal quantile* used by split conformal
//! prediction (Algorithm 3, line 5 of the paper): the
//! `⌈(1−α)(n+1)⌉ / n` empirical quantile of the calibration scores.

use crate::error::{Error, Result};

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance (divides by `n`). Returns 0.0 for fewer than 2 items.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Sample variance (divides by `n - 1`). Returns 0.0 for fewer than 2 items.
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Sample standard deviation.
pub fn sample_std_dev(values: &[f64]) -> f64 {
    sample_variance(values).sqrt()
}

/// Empirical quantile by the "higher" rule: the smallest order statistic
/// whose empirical CDF weight is `>= level`.
///
/// `level` must lie in `[0, 1]`; values outside are errors.
pub fn quantile_higher(values: &[f64], level: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(Error::Empty {
            what: "quantile input",
        });
    }
    if !(0.0..=1.0).contains(&level) {
        return Err(Error::InvalidLevel { value: level });
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    // Smallest k (1-based) with k/n >= level.
    let k = ((level * n as f64).ceil() as usize).clamp(1, n);
    Ok(sorted[k - 1])
}

/// The split-conformal calibration quantile (Algorithm 3, line 5):
/// the `⌈(1−α)(n+1)⌉ / n` empirical quantile of `scores`.
///
/// When `⌈(1−α)(n+1)⌉ > n` (calibration set too small for the requested
/// coverage), the quantile is `+∞`, which yields intervals covering the
/// whole space — the standard conservative convention.
///
/// `alpha` must lie in `(0, 1)`.
pub fn conformal_quantile(scores: &[f64], alpha: f64) -> Result<f64> {
    if scores.is_empty() {
        return Err(Error::Empty {
            what: "conformal scores",
        });
    }
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(Error::InvalidLevel { value: alpha });
    }
    let n = scores.len();
    let rank = ((1.0 - alpha) * (n as f64 + 1.0)).ceil() as usize;
    if rank > n {
        return Ok(f64::INFINITY);
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(sorted[rank - 1])
}

/// Pearson correlation coefficient. Returns 0.0 when either input is
/// constant (undefined correlation) or the slices are shorter than 2.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Per-column standardization parameters.
#[derive(Debug, Clone)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

tinyjson::json_struct!(Standardizer { means, stds });

impl Standardizer {
    /// Fits per-column mean/std on `x` (columns with zero variance get
    /// std 1.0 so they pass through unchanged after centering).
    pub fn fit(x: &crate::Matrix) -> Self {
        let means = x.col_means();
        let mut stds = vec![0.0; x.cols()];
        for row in x.row_iter() {
            for (c, (&v, &m)) in row.iter().zip(&means).enumerate() {
                stds[c] += (v - m) * (v - m);
            }
        }
        let n = x.rows().max(1) as f64;
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Standardizer { means, stds }
    }

    /// Applies `(x - mean) / std` column-wise.
    pub fn transform(&self, x: &crate::Matrix) -> crate::Matrix {
        assert_eq!(
            x.cols(),
            self.means.len(),
            "Standardizer::transform: fitted on {} columns, got {}",
            self.means.len(),
            x.cols()
        );
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[c]) / self.stds[c];
            }
        }
        out
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn mean_var_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(variance(&v), 4.0);
        assert_eq!(std_dev(&v), 2.0);
        assert!((sample_variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_higher_rule() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_higher(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile_higher(&v, 0.25).unwrap(), 1.0);
        assert_eq!(quantile_higher(&v, 0.26).unwrap(), 2.0);
        assert_eq!(quantile_higher(&v, 1.0).unwrap(), 4.0);
        assert!(quantile_higher(&[], 0.5).is_err());
        assert!(quantile_higher(&v, 1.5).is_err());
    }

    #[test]
    fn conformal_quantile_definition() {
        // n = 9, alpha = 0.1: rank = ceil(0.9 * 10) = 9 -> 9th of 9.
        let scores: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        assert_eq!(conformal_quantile(&scores, 0.1).unwrap(), 9.0);
        // n = 19, alpha = 0.1: rank = ceil(0.9 * 20) = 18.
        let scores: Vec<f64> = (1..=19).map(|i| i as f64).collect();
        assert_eq!(conformal_quantile(&scores, 0.1).unwrap(), 18.0);
        // Too small a calibration set -> infinite quantile.
        assert_eq!(conformal_quantile(&[1.0], 0.1).unwrap(), f64::INFINITY);
        assert!(conformal_quantile(&[1.0], 0.0).is_err());
        assert!(conformal_quantile(&[], 0.1).is_err());
    }

    #[test]
    fn conformal_quantile_unsorted_input() {
        let scores = [5.0, 1.0, 3.0, 2.0, 4.0];
        // n = 5, alpha = 0.5: rank = ceil(0.5 * 6) = 3 -> third smallest = 3.
        assert_eq!(conformal_quantile(&scores, 0.5).unwrap(), 3.0);
    }

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0];
        assert!((pearson(&a, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        let m = z.col_means();
        assert!(m[0].abs() < 1e-12);
        // constant column: std clamped to 1, so it is only centered
        assert!(m[1].abs() < 1e-12);
        let col0 = z.col(0);
        assert!((std_dev(&col0) - 1.0).abs() < 1e-12);
    }
}
