//! Dense linear algebra, statistics, and random-number substrate.
//!
//! The rDRP reproduction builds every model (neural networks, tree
//! ensembles, meta-learners) from scratch; this crate provides the shared
//! numeric kernels they stand on:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the operations the
//!   model crates need (matmul, transpose, row views, elementwise maps).
//! * [`solve`] — Cholesky factorization and SPD solves (ridge regression).
//! * [`stats`] — means, variances, quantiles (including the finite-sample
//!   conformal quantile), standardization.
//! * [`random`] — seedable RNG helpers (Gaussian sampling via Box–Muller,
//!   permutations, subsampling) so every experiment is reproducible.
//!
//! All routines are deterministic given a seed and panic loudly on shape
//! mismatches — silent broadcasting is a bug factory in numeric code.

pub mod block;
pub mod error;
pub mod matrix;
pub mod random;
pub mod solve;
pub mod stats;
pub mod vector;

pub use error::{Error, Result};
pub use matrix::Matrix;
