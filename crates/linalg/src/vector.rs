//! Small vector kernels used by optimizers, losses, and metrics.

/// Dot product of two equally sized slices.
///
/// Accumulates into four independent partial sums (one per unrolled
/// lane) and combines them at the end. The independent chains let the
/// CPU overlap the multiply-add latency, and splitting the sum this way
/// also tracks a compensated (Kahan) reference more closely than the
/// naive single-accumulator loop — both properties are pinned in tests.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    let mut acc = [0.0f64; 4];
    let (a4, a_tail) = a.split_at(a.len() - a.len() % 4);
    let (b4, b_tail) = b.split_at(a4.len());
    for (xs, ys) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        acc[0] += xs[0] * ys[0];
        acc[1] += xs[1] * ys[1];
        acc[2] += xs[2] * ys[2];
        acc[3] += xs[3] * ys[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail) {
        tail += x * y;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// `y += alpha * x` in place.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Elementwise difference `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "sub: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise quotient `a / b` with a guard against division by values
/// whose magnitude is below `floor` (they are clamped to `±floor`).
///
/// ROI computation divides revenue uplift by cost uplift; near-zero cost
/// uplift would otherwise explode the ratio, which is exactly why the paper
/// constrains ROI to (0, 1) (Assumption 3).
pub fn safe_div(a: &[f64], b: &[f64], floor: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "safe_div: length mismatch");
    assert!(floor > 0.0, "safe_div: floor must be positive");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let denom = if y.abs() < floor {
                floor.copysign(if y < 0.0 { -1.0 } else { 1.0 })
            } else {
                y
            };
            x / denom
        })
        .collect()
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse sigmoid (logit). Input is clamped to `(eps, 1-eps)` with
/// `eps = 1e-12` to keep the output finite.
#[inline]
pub fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    (p / (1.0 - p)).ln()
}

/// Numerically stable `ln(1 + e^x)`.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Softmax of a slice (stable: subtracts the max first).
pub fn softmax(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Indices that sort `values` in descending order (ties broken by index,
/// making the order deterministic).
pub fn argsort_desc(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// Indices that sort `values` in ascending order.
pub fn argsort_asc(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    /// Compensated (Kahan) dot product — the rounding-error reference
    /// the unrolled kernel is pinned against.
    fn kahan_dot(a: &[f64], b: &[f64]) -> f64 {
        let mut sum = 0.0;
        let mut c = 0.0;
        for (x, y) in a.iter().zip(b) {
            let term = x * y - c;
            let t = sum + term;
            c = (t - sum) - term;
            sum = t;
        }
        sum
    }

    #[test]
    fn dot_tracks_kahan_reference() {
        // Deterministic pseudo-random inputs spanning many magnitudes,
        // at lengths hitting every remainder of the 4-way unroll.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // in roughly [-8, 8) with varying exponents
            (state as f64 / u64::MAX as f64 - 0.5) * 16.0
        };
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 1000, 1003] {
            let a: Vec<f64> = (0..n).map(|_| next()).collect();
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let reference = kahan_dot(&a, &b);
            let got = dot(&a, &b);
            let scale: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x * y).abs())
                .sum::<f64>()
                .max(1.0);
            assert!(
                (got - reference).abs() <= 1e-13 * scale,
                "n={n}: dot={got} kahan={reference}"
            );
        }
    }

    #[test]
    fn dot_exact_on_small_integers() {
        // Integer-valued inputs have exact products and sums, so any
        // accumulation order must produce the same result.
        let a: Vec<f64> = (1..=11).map(f64::from).collect();
        let b: Vec<f64> = (1..=11).map(|i| f64::from(12 - i)).collect();
        let want: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b), want);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        // symmetric: sigma(-x) = 1 - sigma(x)
        for &x in &[0.3, 2.0, 10.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn logit_inverts_sigmoid() {
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
        }
        assert!(logit(0.0).is_finite());
        assert!(logit(1.0).is_finite());
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for &x in &[-5.0f64, -1.0, 0.0, 1.0, 5.0] {
            let naive = (1.0f64 + x.exp()).ln();
            assert!((softplus(x) - naive).abs() < 1e-12);
        }
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) > 0.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        // huge values must not overflow
        let s = softmax(&[1000.0, 1000.0]);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn argsort_orders() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(argsort_desc(&v), vec![0, 2, 1]);
        assert_eq!(argsort_asc(&v), vec![1, 2, 0]);
        // ties broken by index
        let t = [1.0, 1.0, 0.0];
        assert_eq!(argsort_desc(&t), vec![0, 1, 2]);
    }

    #[test]
    fn safe_div_guards_small_denominators() {
        let out = safe_div(&[1.0, 1.0], &[0.5, 1e-12], 1e-6);
        assert_eq!(out[0], 2.0);
        assert_eq!(out[1], 1e6);
        let neg = safe_div(&[1.0], &[-1e-12], 1e-6);
        assert_eq!(neg[0], -1e6);
    }

    #[test]
    fn norm_and_sub() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(sub(&[3.0], &[1.0]), vec![2.0]);
    }
}
