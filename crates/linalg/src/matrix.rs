//! Row-major dense `f64` matrix.
//!
//! This is deliberately a small, predictable type: contiguous storage,
//! explicit shapes, and panicking accessors for hot paths plus fallible
//! (`Result`) entry points for operations whose shape requirements come
//! from user data.

use crate::error::{Error, Result};
use tinyjson::{FromJson, JsonError, ToJson, Value};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if the rows have different lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "from_rows: row {i} has {} columns, expected {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a single-column matrix from a vector.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterates over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Builds a new matrix from the rows at `indices` (rows may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Stacks `self` on top of `other`.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(Error::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `other` to the right of `self`.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(Error::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Appends a constant column (e.g. an intercept) to the right.
    pub fn with_const_col(&self, value: f64) -> Matrix {
        let cols = self.cols + 1;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.push(value);
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses an ikj loop order so the inner loop streams over contiguous
    /// memory — this is the hot kernel for all neural-network layers.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhs` written into `out`, which is reshaped
    /// as needed (its allocation is reused when already large enough).
    ///
    /// Performs the exact floating-point operations of [`Matrix::matmul`]
    /// in the same order, so results are bitwise identical — the
    /// allocation-free inference path depends on that.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.rows = self.rows;
        out.cols = rhs.cols;
        out.data.clear();
        out.data.resize(self.rows * rhs.cols, 0.0);
        let n = rhs.cols;
        for i in 0..self.rows {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(())
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(Error::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(Error::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by `k` in place.
    pub fn scale_mut(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Returns `self` scaled by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(k);
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_mut(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `rhs` (interpreted as a row vector) to every row.
    pub fn add_row_vector(&self, rhs: &[f64]) -> Result<Matrix> {
        let mut out = self.clone();
        out.add_row_vector_mut(rhs)?;
        Ok(out)
    }

    /// Adds `rhs` (interpreted as a row vector) to every row in place.
    pub fn add_row_vector_mut(&mut self, rhs: &[f64]) -> Result<()> {
        if rhs.len() != self.cols {
            return Err(Error::ShapeMismatch {
                op: "add_row_vector",
                lhs: self.shape(),
                rhs: (1, rhs.len()),
            });
        }
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(rhs) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Column-wise sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in self.row_iter() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Column-wise means (length `cols`). Empty matrices yield zeros.
    pub fn col_means(&self) -> Vec<f64> {
        let mut sums = self.col_sums();
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f64;
            for s in &mut sums {
                *s *= inv;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// True when every element is finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl ToJson for Matrix {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("rows".to_string(), self.rows.to_json()),
            ("cols".to_string(), self.cols.to_json()),
            ("data".to_string(), self.data.to_json()),
        ])
    }
}

impl FromJson for Matrix {
    fn from_json(v: &Value) -> std::result::Result<Self, JsonError> {
        let rows = usize::from_json(v.fetch("rows"))?;
        let cols = usize::from_json(v.fetch("cols"))?;
        let data = Vec::<f64>::from_json(v.fetch("data"))?;
        if data.len() != rows * cols {
            return Err(JsonError::msg(format!(
                "Matrix: {} values do not fill a {rows}x{cols} shape",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 0), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_rows_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "from_rows")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert!(approx(c.get(0, 0), 19.0));
        assert!(approx(c.get(0, 1), 22.0));
        assert!(approx(c.get(1, 0), 43.0));
        assert!(approx(c.get(1, 1), 50.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.5, 3.0], vec![0.5, 4.0, -1.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(Error::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_errors_name_the_offending_dimensions() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        let msg = a.matmul(&b).unwrap_err().to_string();
        assert!(
            msg.contains("lhs has 3 columns but rhs has 4 rows"),
            "matmul message should pinpoint the inner dimensions: {msg}"
        );
        let mut out = Matrix::zeros(1, 1);
        let msg = a.matmul_into(&b, &mut out).unwrap_err().to_string();
        assert!(
            msg.contains("matmul_into") && msg.contains("lhs has 3 columns but rhs has 4 rows"),
            "matmul_into message should name the op and dimensions: {msg}"
        );
        let msg = a.matvec(&[0.0; 4]).unwrap_err().to_string();
        assert!(
            msg.contains("lhs has 3 columns but rhs has 4 rows"),
            "matvec message should pinpoint the inner dimensions: {msg}"
        );
    }

    /// Property sweep over degenerate shapes: 0-row, 0-column, and 1×1
    /// operands must all round-trip through matmul/matmul_into with the
    /// algebraically implied output shape and contents.
    #[test]
    fn matmul_degenerate_shapes() {
        // (m, k, n) sweeps where any dimension may be 0 or 1.
        for &(m, k, n) in &[
            (0usize, 0usize, 0usize),
            (0, 3, 2),
            (2, 0, 3),
            (3, 2, 0),
            (1, 1, 1),
            (1, 0, 1),
            (0, 1, 0),
        ] {
            // Deterministic non-trivial entries so 1×1 checks real math.
            let a = Matrix::from_vec(m, k, (0..m * k).map(|i| 0.5 * i as f64 - 1.0).collect());
            let b = Matrix::from_vec(k, n, (0..k * n).map(|i| 1.5 - 0.25 * i as f64).collect());
            let c = a.matmul(&b).unwrap();
            assert_eq!(c.shape(), (m, n), "shape for m={m} k={k} n={n}");
            // Reference: naive triple loop.
            for i in 0..m {
                for j in 0..n {
                    let want: f64 = (0..k).map(|t| a.get(i, t) * b.get(t, j)).sum();
                    assert_eq!(c.get(i, j), want, "m={m} k={k} n={n} [{i},{j}]");
                }
            }
            // matmul_into agrees bitwise even from a stale out shape.
            let mut out = Matrix::zeros(7, 5);
            a.matmul_into(&b, &mut out).unwrap();
            assert_eq!(out.shape(), (m, n));
            assert_eq!(out.as_slice(), c.as_slice());
            // k = 0 contracts over nothing: the product must be all-zero.
            if k == 0 {
                assert!(c.as_slice().iter().all(|&v| v == 0.0));
            }
        }
        // 1×1 sanity: matmul degenerates to scalar multiplication.
        let a = Matrix::from_vec(1, 1, vec![3.0]);
        let b = Matrix::from_vec(1, 1, vec![-0.5]);
        assert_eq!(a.matmul(&b).unwrap().get(0, 0), -1.5);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        let expected = a.matmul(&Matrix::column(&v)).unwrap();
        assert!(approx(got[0], expected.get(0, 0)));
        assert!(approx(got[1], expected.get(1, 0)));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().row(0), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn stack_and_select() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
        let s = v.select_rows(&[1, 0, 1]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), &[3.0, 4.0]);
        assert_eq!(s.row(2), &[3.0, 4.0]);
    }

    #[test]
    fn const_col_and_row_vector() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let with1 = a.with_const_col(1.0);
        assert_eq!(with1.row(0), &[1.0, 1.0]);
        let shifted = a.add_row_vector(&[10.0]).unwrap();
        assert_eq!(shifted.col(0), vec![11.0, 12.0]);
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, -2.5], vec![0.25, 3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![0.0, 8.0], vec![-1.5, 2.0]]);
        let want = a.matmul(&b).unwrap();
        // Start from a stale, differently-shaped scratch buffer.
        let mut out = Matrix::full(7, 1, f64::NAN);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, want);
        assert!(a.matmul_into(&Matrix::zeros(2, 2), &mut out).is_err());
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let m = Matrix::from_rows(&[vec![0.1, 1.0 / 3.0], vec![-2.5e-17, 4.0]]);
        let text = tinyjson::to_string_pretty(&m);
        let back: Matrix = tinyjson::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert!(tinyjson::from_str::<Matrix>("{\"rows\":2,\"cols\":2,\"data\":[1]}").is_err());
    }

    #[test]
    fn col_means_and_norm() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col_means(), vec![2.0, 3.0]);
        assert!(approx(
            a.frobenius_norm(),
            (1.0f64 + 4.0 + 9.0 + 16.0).sqrt()
        ));
        assert!(a.is_finite());
        let mut b = a.clone();
        b.set(0, 0, f64::NAN);
        assert!(!b.is_finite());
    }
}
