//! Symmetric positive-definite solvers.
//!
//! Ridge regression (the workhorse base learner for the meta-learner
//! baselines) reduces to solving `(XᵀX + λI) β = Xᵀy`, an SPD system we
//! factor with Cholesky.

use crate::error::{Error, Result};
use crate::Matrix;

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix. Only the lower triangle of `a` is read.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(Error::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(Error::NotPositiveDefinite { pivot: i });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for SPD `A` via Cholesky (forward + back substitution).
#[allow(clippy::needless_range_loop)] // triangular solves index two arrays by row
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if b.len() != n {
        return Err(Error::ShapeMismatch {
            op: "solve_spd",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let l = cholesky(a)?;
    // Forward substitution: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * z[k];
        }
        z[i] = sum / l.get(i, i);
    }
    // Back substitution: L^T x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in (i + 1)..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

/// Ridge regression coefficients: solves
/// `(XᵀX + λI) β = Xᵀ y` with `λ = ridge`.
///
/// An intercept should be handled by the caller (append a constant column
/// with [`Matrix::with_const_col`]); this keeps the penalty uniform and the
/// API explicit.
pub fn ridge_fit(x: &Matrix, y: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(Error::ShapeMismatch {
            op: "ridge_fit",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    if x.rows() == 0 {
        return Err(Error::Empty {
            what: "design matrix",
        });
    }
    let xt = x.transpose();
    let mut gram = xt.matmul(x)?;
    let d = gram.rows();
    for i in 0..d {
        let v = gram.get(i, i);
        gram.set(i, i, v + ridge.max(0.0));
    }
    let xty = xt.matvec(y)?;
    solve_spd(&gram, &xty)
}

/// Weighted ridge regression: solves `(XᵀWX + λI) β = XᵀW y` for a
/// diagonal weight matrix `W = diag(weights)` with non-negative entries.
///
/// Used by the R-learner, whose final stage minimizes
/// `Σ w_i (ỹ_i − β·x_i)²` with `w_i = (t_i − e)²`.
pub fn ridge_fit_weighted(x: &Matrix, y: &[f64], weights: &[f64], ridge: f64) -> Result<Vec<f64>> {
    if x.rows() != y.len() || x.rows() != weights.len() {
        return Err(Error::ShapeMismatch {
            op: "ridge_fit_weighted",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    if x.rows() == 0 {
        return Err(Error::Empty {
            what: "design matrix",
        });
    }
    // Scale rows by sqrt(w): X' = sqrt(W) X, y' = sqrt(W) y reduces the
    // problem to ordinary ridge.
    let mut xw = x.clone();
    let mut yw = y.to_vec();
    for r in 0..x.rows() {
        let s = weights[r].max(0.0).sqrt();
        for v in xw.row_mut(r) {
            *v *= s;
        }
        yw[r] *= s;
    }
    ridge_fit(&xw, &yw, ridge)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn weighted_ridge_ignores_zero_weight_rows() {
        // Rows 0..3 follow y = 2x; row 4 is an outlier with weight 0.
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]]);
        let y = [2.0, 4.0, 6.0, 8.0, -100.0];
        let w = [1.0, 1.0, 1.0, 1.0, 0.0];
        let beta = ridge_fit_weighted(&x, &y, &w, 1e-9).unwrap();
        assert!(approx(beta[0], 2.0, 1e-6), "beta {:?}", beta);
        // With uniform weights the outlier drags the slope down.
        let beta_all = ridge_fit(&x, &y, 1e-9).unwrap();
        assert!(beta_all[0] < 0.5);
    }

    #[test]
    fn weighted_matches_unweighted_for_unit_weights() {
        let x = Matrix::from_rows(&[vec![1.0, 0.5], vec![0.2, 1.5], vec![2.0, -1.0]]);
        let y = [1.0, 2.0, 3.0];
        let w = [1.0, 1.0, 1.0];
        let a = ridge_fit(&x, &y, 0.5).unwrap();
        let b = ridge_fit_weighted(&x, &y, &w, 0.5).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            assert!(approx(*ai, *bi, 1e-12));
        }
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]]
        // L = [[2, 0, 0], [6, 1, 0], [-8, 5, 3]]
        let a = Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ]);
        let l = cholesky(&a).unwrap();
        assert!(approx(l.get(0, 0), 2.0, 1e-12));
        assert!(approx(l.get(1, 0), 6.0, 1e-12));
        assert!(approx(l.get(1, 1), 1.0, 1e-12));
        assert!(approx(l.get(2, 0), -8.0, 1e-12));
        assert!(approx(l.get(2, 1), 5.0, 1e-12));
        assert!(approx(l.get(2, 2), 3.0, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(Error::NotPositiveDefinite { .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(cholesky(&rect), Err(Error::NotSquare { .. })));
    }

    #[test]
    fn solve_spd_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!(approx(*got, *want, 1e-10));
        }
    }

    #[test]
    fn ridge_recovers_linear_coefficients() {
        // y = 2 x0 - 3 x1 + 1, noiseless, ridge -> small bias only.
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64) / 10.0, ((i * 7) % 13) as f64 / 5.0])
            .collect();
        let x = Matrix::from_rows(&xs).with_const_col(1.0);
        let y: Vec<f64> = xs.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 1.0).collect();
        let beta = ridge_fit(&x, &y, 1e-8).unwrap();
        assert!(approx(beta[0], 2.0, 1e-5));
        assert!(approx(beta[1], -3.0, 1e-5));
        assert!(approx(beta[2], 1.0, 1e-4));
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = [2.0, 4.0, 6.0];
        let none = ridge_fit(&x, &y, 0.0).unwrap()[0];
        let heavy = ridge_fit(&x, &y, 100.0).unwrap()[0];
        assert!(approx(none, 2.0, 1e-10));
        assert!(heavy.abs() < none.abs());
        assert!(heavy > 0.0);
    }

    #[test]
    fn ridge_rejects_bad_shapes() {
        let x = Matrix::zeros(3, 2);
        assert!(ridge_fit(&x, &[1.0, 2.0], 0.1).is_err());
        let empty = Matrix::zeros(0, 2);
        assert!(ridge_fit(&empty, &[], 0.1).is_err());
    }
}
