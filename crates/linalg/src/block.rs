//! Columnar `f32` feature blocks and cache-blocked GEMM micro-kernels.
//!
//! The scalar reference path of this workspace keeps everything in
//! row-major `f64` ([`crate::Matrix`]). That is the right layout for
//! training (weights change every step, numerics dominate) but the wrong
//! one for bulk inference: scoring a million rows through a small MLP or
//! a forest is memory-bound, and a row-major `f64` walk wastes half the
//! bandwidth and defeats vectorization across rows.
//!
//! This module is the inference fast path:
//!
//! * [`FeatureBlock`] — a structure-of-arrays `f32` block. Each *column*
//!   (feature) is contiguous and padded to a multiple of [`MR`] rows, so
//!   a SIMD vector spans consecutive *rows* of one feature. Column bases
//!   are 64-byte aligned (one cache line).
//! * [`PackedGemm`] — weights packed into [`NR`]-column panels plus a
//!   folded bias, applied with an `MR`×`NR` register-tiled micro-kernel.
//! * [`Dispatch`] — runtime selection between the portable scalar
//!   micro-kernel and the AVX2+FMA one. **Both kernels perform the same
//!   fused-multiply-adds in the same order** (the scalar path uses
//!   [`f32::mul_add`], which is single-rounded exactly like the hardware
//!   FMA), so results are bitwise identical across dispatch modes — the
//!   property the kernel-parity CI job pins.
//!
//! The `f64` scalar path remains the always-available reference; every
//! consumer of this module is an opt-in `*_block` variant whose
//! tolerance contract against the reference is documented in DESIGN.md
//! §11.

use crate::Matrix;

/// Row-tile height of the micro-kernel: two 8-lane `f32` vectors.
/// [`FeatureBlock`] pads its row count to a multiple of this, so the
/// kernel has no row-remainder loop.
pub const MR: usize = 16;

/// Column-panel width of the micro-kernel (output features per tile).
/// Partial panels are padded with zero weights at pack time.
pub const NR: usize = 4;

/// Column bases are aligned to this many bytes (a cache line).
const ALIGN: usize = 64;

/// Environment variable forcing the kernel dispatch. `scalar` pins the
/// portable fallback; anything else (or unset) selects the best path the
/// CPU supports. Read once per process.
pub const DISPATCH_ENV: &str = "RDRP_KERNEL_DISPATCH";

/// Which micro-kernel implementation services block operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Portable scalar kernel mirroring the SIMD lane structure with
    /// [`f32::mul_add`] — the reference implementation, available
    /// everywhere.
    Scalar,
    /// AVX2 + FMA kernel (x86-64 only, runtime-detected).
    Avx2Fma,
}

/// The best kernel the running CPU supports, ignoring [`DISPATCH_ENV`].
pub fn best_dispatch() -> Dispatch {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Dispatch::Avx2Fma;
        }
    }
    Dispatch::Scalar
}

/// The process-wide dispatch: [`best_dispatch`] unless [`DISPATCH_ENV`]
/// is set to `scalar`. Cached after the first call, so the CI parity job
/// sets the variable before launching the test process.
pub fn active_dispatch() -> Dispatch {
    use std::sync::OnceLock;
    static ACTIVE: OnceLock<Dispatch> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var(DISPATCH_ENV) {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Dispatch::Scalar,
        _ => best_dispatch(),
    })
}

/// A dense `f32` feature block in structure-of-arrays (column-major)
/// layout: column `c` occupies `rows_padded` consecutive elements, the
/// first [`MR`]-aligned, with rows past [`FeatureBlock::rows`] zero on
/// construction. Padding rows flow through kernels like real rows; their
/// contents are never read back.
#[derive(Debug, Clone)]
pub struct FeatureBlock {
    rows: usize,
    cols: usize,
    rows_padded: usize,
    /// Backing storage; `offset` 64-byte-aligns the first column.
    data: Vec<f32>,
    offset: usize,
}

fn pad_rows(rows: usize) -> usize {
    rows.div_ceil(MR).max(1) * MR
}

impl FeatureBlock {
    /// An all-zero block of the given logical shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let rows_padded = pad_rows(rows);
        let len = rows_padded * cols;
        // Over-allocate one cache line and slide the start so every
        // column base (stride is a multiple of MR f32 = 64 bytes) lands
        // on a cache-line boundary.
        let data = vec![0.0f32; len + ALIGN / std::mem::size_of::<f32>()];
        let offset = {
            let addr = data.as_ptr() as usize;
            (ALIGN - addr % ALIGN) % ALIGN / std::mem::size_of::<f32>()
        };
        FeatureBlock {
            rows,
            cols,
            rows_padded,
            data,
            offset,
        }
    }

    /// Converts a row-major `f64` matrix, casting each value to `f32`.
    pub fn from_matrix(x: &Matrix) -> Self {
        let mut block = FeatureBlock::zeros(x.rows(), x.cols());
        for (r, row) in x.row_iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                block.set(r, c, v as f32);
            }
        }
        block
    }

    /// Builds a block from equally sized `f64` rows.
    ///
    /// # Panics
    /// Panics if the rows have different lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut block = FeatureBlock::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "FeatureBlock::from_rows: row {r} has {} columns, expected {cols}",
                row.len()
            );
            for (c, &v) in row.iter().enumerate() {
                block.set(r, c, v as f32);
            }
        }
        block
    }

    /// The logical rows as `f64` vectors (padding rows excluded).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| f64::from(self.get(r, c))).collect())
            .collect()
    }

    /// The logical contents as a row-major `f64` [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, f64::from(self.get(r, c)));
            }
        }
        out
    }

    /// Logical row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column (feature) count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Physical rows per column: [`FeatureBlock::rows`] rounded up to a
    /// multiple of [`MR`].
    #[inline]
    pub fn rows_padded(&self) -> usize {
        self.rows_padded
    }

    /// Column `c` including padding rows.
    #[inline]
    pub fn col(&self, c: usize) -> &[f32] {
        debug_assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        let start = self.offset + c * self.rows_padded;
        &self.data[start..start + self.rows_padded]
    }

    /// Mutable column `c` including padding rows.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f32] {
        debug_assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        let start = self.offset + c * self.rows_padded;
        &mut self.data[start..start + self.rows_padded]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[self.offset + c * self.rows_padded + r]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[self.offset + c * self.rows_padded + r] = v;
    }

    /// Column `c` of the logical rows as `f64` (padding excluded).
    pub fn col_f64(&self, c: usize) -> Vec<f64> {
        self.col(c)[..self.rows]
            .iter()
            .map(|&v| f64::from(v))
            .collect()
    }

    /// Reshapes in place for reuse of the allocation (contents become
    /// all-zero, like a fresh [`FeatureBlock::zeros`]).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let rows_padded = pad_rows(rows);
        let len = rows_padded * cols + ALIGN / std::mem::size_of::<f32>();
        self.data.clear();
        self.data.resize(len, 0.0);
        self.offset = {
            let addr = self.data.as_ptr() as usize;
            (ALIGN - addr % ALIGN) % ALIGN / std::mem::size_of::<f32>()
        };
        self.rows = rows;
        self.cols = cols;
        self.rows_padded = rows_padded;
    }

    /// Concatenates `other`'s columns to the right of `self`'s.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &FeatureBlock) -> FeatureBlock {
        assert_eq!(
            self.rows, other.rows,
            "FeatureBlock::hstack: {} rows vs {} rows",
            self.rows, other.rows
        );
        let mut out = FeatureBlock::zeros(self.rows, self.cols + other.cols);
        let n = out.rows_padded.min(self.rows_padded);
        for c in 0..self.cols {
            out.col_mut(c)[..n].copy_from_slice(&self.col(c)[..n]);
        }
        let m = out.rows_padded.min(other.rows_padded);
        for c in 0..other.cols {
            out.col_mut(self.cols + c)[..m].copy_from_slice(&other.col(c)[..m]);
        }
        out
    }
}

/// Weights and bias of one affine map `out = a · W + b`, packed for the
/// micro-kernel: `W` (`k`×`n`, row-major `f64`) becomes `ceil(n/NR)`
/// panels of `k`×[`NR`] interleaved `f32` values (partial panels padded
/// with zero columns), and the bias is folded into the accumulator
/// initialization.
#[derive(Debug, Clone)]
pub struct PackedGemm {
    k: usize,
    n: usize,
    /// Panel p, depth kk, lane j: `panels[(p * k + kk) * NR + j]`.
    panels: Vec<f32>,
    bias: Vec<f32>,
}

impl PackedGemm {
    /// Packs a `k`×`n` weight matrix and a length-`n` bias.
    ///
    /// # Panics
    /// Panics if `bias.len() != w.cols()`.
    pub fn pack(w: &Matrix, bias: &[f64]) -> Self {
        assert_eq!(
            bias.len(),
            w.cols(),
            "PackedGemm::pack: bias length {} vs {} output columns",
            bias.len(),
            w.cols()
        );
        let (k, n) = (w.rows(), w.cols());
        let n_panels = n.div_ceil(NR).max(1);
        let mut panels = vec![0.0f32; n_panels * k * NR];
        for p in 0..n_panels {
            for kk in 0..k {
                for j in 0..NR {
                    let c = p * NR + j;
                    if c < n {
                        panels[(p * k + kk) * NR + j] = w.get(kk, c) as f32;
                    }
                }
            }
        }
        PackedGemm {
            k,
            n,
            panels,
            bias: bias.iter().map(|&b| b as f32).collect(),
        }
    }

    /// Input depth (`k`) this packing expects.
    pub fn input_dim(&self) -> usize {
        self.k
    }

    /// Output width (`n`).
    pub fn output_dim(&self) -> usize {
        self.n
    }

    /// Computes `out = a · W + b` into `out` (reshaped as needed, its
    /// allocation reused) with the requested kernel. Padding rows of `a`
    /// are processed like real rows; with zero padding in `a` they
    /// produce `b` in the padding rows of `out`.
    ///
    /// # Panics
    /// Panics if `a.cols() != k`.
    pub fn apply_into(&self, a: &FeatureBlock, out: &mut FeatureBlock, dispatch: Dispatch) {
        assert_eq!(
            a.cols(),
            self.k,
            "PackedGemm::apply_into: input has {} columns, expected {}",
            a.cols(),
            self.k
        );
        out.reset(a.rows(), self.n);
        let n_panels = self.n.div_ceil(NR).max(1);
        if self.n == 0 {
            return;
        }
        for p in 0..n_panels {
            let panel = &self.panels[p * self.k * NR..(p + 1) * self.k * NR];
            let jn = (self.n - p * NR).min(NR);
            for i in (0..a.rows_padded()).step_by(MR) {
                match dispatch {
                    #[cfg(target_arch = "x86_64")]
                    Dispatch::Avx2Fma => unsafe {
                        // Safety: Avx2Fma is only handed out by
                        // best_dispatch() after runtime detection.
                        tile_avx2(a, panel, &self.bias[p * NR..p * NR + jn], self.k, i, p, out)
                    },
                    #[cfg(not(target_arch = "x86_64"))]
                    Dispatch::Avx2Fma => {
                        tile_scalar(a, panel, &self.bias[p * NR..p * NR + jn], self.k, i, p, out)
                    }
                    Dispatch::Scalar => {
                        tile_scalar(a, panel, &self.bias[p * NR..p * NR + jn], self.k, i, p, out)
                    }
                }
            }
        }
    }

    /// Convenience allocating variant of [`PackedGemm::apply_into`].
    pub fn apply(&self, a: &FeatureBlock, dispatch: Dispatch) -> FeatureBlock {
        let mut out = FeatureBlock::zeros(0, 0);
        self.apply_into(a, &mut out, dispatch);
        out
    }
}

/// Portable micro-kernel for one `MR`-row × `NR`-column register tile.
/// Mirrors the AVX2 kernel lane for lane: accumulators start at the
/// bias and absorb one single-rounded fused multiply-add per depth step
/// ([`f32::mul_add`]), so both kernels round identically everywhere.
fn tile_scalar(
    a: &FeatureBlock,
    panel: &[f32],
    bias: &[f32],
    k: usize,
    i: usize,
    p: usize,
    out: &mut FeatureBlock,
) {
    let mut acc = [[0.0f32; MR]; NR];
    for (j, &b) in bias.iter().enumerate() {
        acc[j] = [b; MR];
    }
    for kk in 0..k {
        let alane: &[f32] = &a.col(kk)[i..i + MR];
        let w = &panel[kk * NR..(kk + 1) * NR];
        for (j, accj) in acc.iter_mut().enumerate() {
            let wj = w[j];
            for (l, av) in alane.iter().enumerate() {
                accj[l] = av.mul_add(wj, accj[l]);
            }
        }
    }
    for (j, accj) in acc.iter().enumerate().take(bias.len()) {
        out.col_mut(p * NR + j)[i..i + MR].copy_from_slice(accj);
    }
}

/// AVX2+FMA micro-kernel: 8 live `__m256` accumulators (2 row vectors ×
/// `NR` columns), one broadcast + two FMAs per weight.
///
/// # Safety
/// Caller must have verified `avx2` and `fma` at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_avx2(
    a: &FeatureBlock,
    panel: &[f32],
    bias: &[f32],
    k: usize,
    i: usize,
    p: usize,
    out: &mut FeatureBlock,
) {
    use std::arch::x86_64::*;
    let mut lo = [_mm256_setzero_ps(); NR];
    let mut hi = [_mm256_setzero_ps(); NR];
    for (j, &b) in bias.iter().enumerate() {
        lo[j] = _mm256_set1_ps(b);
        hi[j] = _mm256_set1_ps(b);
    }
    for kk in 0..k {
        let base = a.col(kk).as_ptr().add(i);
        let a_lo = _mm256_loadu_ps(base);
        let a_hi = _mm256_loadu_ps(base.add(8));
        let w = panel.as_ptr().add(kk * NR);
        for j in 0..NR {
            let wj = _mm256_set1_ps(*w.add(j));
            lo[j] = _mm256_fmadd_ps(a_lo, wj, lo[j]);
            hi[j] = _mm256_fmadd_ps(a_hi, wj, hi[j]);
        }
    }
    for j in 0..bias.len() {
        let dst = out.col_mut(p * NR + j).as_mut_ptr().add(i);
        _mm256_storeu_ps(dst, lo[j]);
        _mm256_storeu_ps(dst.add(8), hi[j]);
    }
}

// ---------------------------------------------------------------------
// Fast elementwise ELU for the block activation pass.
//
// `exp` through libm dominates the block path's runtime for ELU networks
// (one call per negative pre-activation), so the block pass uses a
// Cephes-style degree-5 polynomial `expf` instead. The scalar and AVX2
// implementations below mirror each other operation for operation —
// same clamps (with the `vminps`/`vmaxps` operand convention), same
// round-to-nearest-even via the 1.5·2^23 magic constant, same
// single-rounded FMA chain — so ELU stays **bitwise identical across
// dispatch modes** like the GEMM kernels. Against the f64 reference the
// polynomial is accurate to a few f32 ulp, well inside the block path's
// tolerance contract (DESIGN.md §11).

/// Clamp bounds: beyond these, `expf` saturates to `inf` / `0.0f32`.
const EXP_HI: f32 = 88.722_84;
#[allow(clippy::excessive_precision)] // canonical Cephes digits
const EXP_LO: f32 = -87.336_544;
/// `log2(e)` for the range reduction `x = n·ln2 + r`.
const EXP_LOG2E: f32 = std::f32::consts::LOG2_E;
/// `ln2` split into a high part exact in f32 and a low correction.
/// `0.693359375 = 710/2^10` is exact in f32; the trailing digits are
/// the point, not excess precision.
#[allow(clippy::excessive_precision)]
const EXP_C1: f32 = 0.693_359_375;
const EXP_C2: f32 = -2.121_944_4e-4;
/// Minimax coefficients for `e^r - 1 - r` on `|r| <= ln2/2` (Cephes).
const EXP_P0: f32 = 1.987_569_2e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_5e-1;
const EXP_P5: f32 = 5.000_000_3e-1;
/// `1.5 · 2^23`: adding then subtracting rounds `|x| < 2^22` to the
/// nearest integer (ties to even) in pure f32 arithmetic — the same
/// result in the scalar and SIMD paths, independent of rounding-mode
/// intrinsics.
const EXP_ROUND: f32 = 12_582_912.0;

/// Polynomial `expf` on a clamped input; mirrors `exp_avx2` lane math.
#[inline]
fn exp_scalar(x: f32) -> f32 {
    // Clamp with the vminps/vmaxps operand convention (`if a OP b { a }
    // else { b }`) so out-of-range and NaN inputs take the same value on
    // both paths.
    let x = if x < EXP_HI { x } else { EXP_HI };
    let x = if x > EXP_LO { x } else { EXP_LO };
    let n = x.mul_add(EXP_LOG2E, EXP_ROUND) - EXP_ROUND;
    let r = n.mul_add(-EXP_C1, x);
    let r = n.mul_add(-EXP_C2, r);
    let mut p = EXP_P0;
    p = p.mul_add(r, EXP_P1);
    p = p.mul_add(r, EXP_P2);
    p = p.mul_add(r, EXP_P3);
    p = p.mul_add(r, EXP_P4);
    p = p.mul_add(r, EXP_P5);
    let p = p.mul_add(r * r, r) + 1.0;
    // 2^n through the exponent bits; n is integral in [-126, 128].
    #[allow(clippy::cast_possible_truncation)] // n is integral by construction
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    p * scale
}

/// Scalar ELU sweep mirroring the AVX2 blend semantics.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must take the exp branch like the SIMD blend
fn elu_scalar_slice(xs: &mut [f32]) {
    for v in xs {
        let x = *v;
        if !(x >= 0.0) {
            *v = exp_scalar(x) - 1.0;
        }
    }
}

/// AVX2 ELU sweep: 8 lanes per step, each lane performing exactly the
/// operations of [`exp_scalar`] / [`elu_scalar_slice`].
///
/// # Safety
/// Caller must have verified `avx2` and `fma` at runtime, and
/// `xs.len()` must be a multiple of 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn elu_avx2(xs: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(xs.len() % 8, 0);
    let hi = _mm256_set1_ps(EXP_HI);
    let lo = _mm256_set1_ps(EXP_LO);
    let log2e = _mm256_set1_ps(EXP_LOG2E);
    let round = _mm256_set1_ps(EXP_ROUND);
    let nc1 = _mm256_set1_ps(-EXP_C1);
    let nc2 = _mm256_set1_ps(-EXP_C2);
    let p1 = _mm256_set1_ps(EXP_P1);
    let p2 = _mm256_set1_ps(EXP_P2);
    let p3 = _mm256_set1_ps(EXP_P3);
    let p4 = _mm256_set1_ps(EXP_P4);
    let p5 = _mm256_set1_ps(EXP_P5);
    let one = _mm256_set1_ps(1.0);
    let zero = _mm256_setzero_ps();
    for i in (0..xs.len()).step_by(8) {
        let ptr = xs.as_mut_ptr().add(i);
        let x0 = _mm256_loadu_ps(ptr);
        let x = _mm256_max_ps(_mm256_min_ps(x0, hi), lo);
        let t = _mm256_fmadd_ps(x, log2e, round);
        let n = _mm256_sub_ps(t, round);
        let r = _mm256_fmadd_ps(n, nc1, x);
        let r = _mm256_fmadd_ps(n, nc2, r);
        let mut p = _mm256_set1_ps(EXP_P0);
        p = _mm256_fmadd_ps(p, r, p1);
        p = _mm256_fmadd_ps(p, r, p2);
        p = _mm256_fmadd_ps(p, r, p3);
        p = _mm256_fmadd_ps(p, r, p4);
        p = _mm256_fmadd_ps(p, r, p5);
        let rr = _mm256_mul_ps(r, r);
        let p = _mm256_add_ps(_mm256_fmadd_ps(p, rr, r), one);
        let ni = _mm256_cvtps_epi32(n);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(ni, _mm256_set1_epi32(127)),
            23,
        ));
        let e = _mm256_mul_ps(p, scale);
        let em1 = _mm256_sub_ps(e, one);
        // x >= 0 keeps x; everything else (negatives, NaN) takes e - 1 —
        // the same selection `elu_scalar_slice` makes.
        let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(x0, zero);
        _mm256_storeu_ps(ptr, _mm256_blendv_ps(em1, x0, keep));
    }
}

/// ELU (`alpha = 1`) applied in place with the requested kernel.
/// Bitwise identical across [`Dispatch`] modes; accurate to a few f32
/// ulp against `exp` (the polynomial trades libm's last bits for an
/// order of magnitude in throughput on the block path).
pub fn elu_in_place(xs: &mut [f32], dispatch: Dispatch) {
    #[cfg(target_arch = "x86_64")]
    if dispatch == Dispatch::Avx2Fma {
        let n8 = xs.len() / 8 * 8;
        // Safety: Avx2Fma is only handed out after runtime detection.
        unsafe { elu_avx2(&mut xs[..n8]) };
        elu_scalar_slice(&mut xs[n8..]);
        return;
    }
    let _ = dispatch;
    elu_scalar_slice(xs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Prng;

    fn random_matrix(rows: usize, cols: usize, rng: &mut Prng) -> Matrix {
        Matrix::from_vec(rows, cols, rng.gaussian_vec(rows * cols))
    }

    /// f64 reference for `x · W + b` (plain sums, no FMA): the kernels
    /// must agree to f32 accuracy, not bitwise.
    fn reference(x: &Matrix, w: &Matrix, b: &[f64]) -> Matrix {
        let mut out = x.matmul(w).unwrap();
        out.add_row_vector_mut(b).unwrap();
        out
    }

    #[test]
    fn block_roundtrip_preserves_values_and_pads() {
        let mut rng = Prng::seed_from_u64(0);
        let x = random_matrix(19, 3, &mut rng);
        let b = FeatureBlock::from_matrix(&x);
        assert_eq!(b.rows(), 19);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.rows_padded(), 32);
        // Values survive the f32 cast exactly when re-read as f32.
        for r in 0..19 {
            for c in 0..3 {
                assert_eq!(b.get(r, c), x.get(r, c) as f32);
            }
        }
        // Padding rows are zero.
        for c in 0..3 {
            assert!(b.col(c)[19..].iter().all(|&v| v == 0.0));
        }
        // Row converters agree with the matrix converter.
        assert_eq!(b.to_matrix().rows(), 19);
        assert_eq!(b.to_rows()[7], b.to_matrix().row(7).to_vec());
    }

    #[test]
    fn from_rows_matches_from_matrix() {
        let rows = vec![vec![1.5, -2.0], vec![0.25, 4.0], vec![-1.0, 0.5]];
        let a = FeatureBlock::from_rows(&rows);
        let b = FeatureBlock::from_matrix(&Matrix::from_rows(&rows));
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn columns_are_cache_line_aligned() {
        for rows in [1, 16, 17, 250] {
            let b = FeatureBlock::zeros(rows, 3);
            for c in 0..3 {
                assert_eq!(b.col(c).as_ptr() as usize % ALIGN, 0, "rows={rows} col={c}");
            }
        }
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = FeatureBlock::from_rows(&[vec![1.0], vec![2.0]]);
        let b = FeatureBlock::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let h = a.hstack(&b);
        assert_eq!(h.cols(), 3);
        assert_eq!(h.to_rows(), vec![vec![1.0, 3.0, 4.0], vec![2.0, 5.0, 6.0]]);
    }

    /// Ragged shapes hitting every remainder edge: row counts around the
    /// MR tile boundary, column counts around the NR panel boundary, and
    /// depths from one feature up.
    #[test]
    fn gemm_matches_f64_reference_over_ragged_shapes() {
        let mut rng = Prng::seed_from_u64(1);
        for &rows in &[1usize, 15, 16, 17, 33] {
            for &k in &[1usize, 2, 7, 16] {
                for &n in &[1usize, 3, 4, 5, 8, 9] {
                    let x = random_matrix(rows, k, &mut rng);
                    let w = random_matrix(k, n, &mut rng);
                    let b = rng.gaussian_vec(n);
                    let want = reference(&x, &w, &b);
                    let packed = PackedGemm::pack(&w, &b);
                    let a = FeatureBlock::from_matrix(&x);
                    for dispatch in [Dispatch::Scalar, best_dispatch()] {
                        let got = packed.apply(&a, dispatch);
                        assert_eq!(got.rows(), rows);
                        assert_eq!(got.cols(), n);
                        for r in 0..rows {
                            for c in 0..n {
                                let diff = (f64::from(got.get(r, c)) - want.get(r, c)).abs();
                                assert!(
                                    diff < 1e-4,
                                    "{dispatch:?} rows={rows} k={k} n={n} [{r},{c}]: \
                                     {} vs {}",
                                    got.get(r, c),
                                    want.get(r, c)
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// The dispatch-invariance contract: scalar and SIMD kernels agree
    /// bitwise, because both perform single-rounded FMAs in the same
    /// order. (Trivially true on machines without AVX2.)
    #[test]
    fn scalar_and_simd_kernels_agree_bitwise() {
        let mut rng = Prng::seed_from_u64(2);
        for &(rows, k, n) in &[
            (33usize, 7usize, 5usize),
            (16, 64, 64),
            (1, 1, 1),
            (17, 3, 9),
        ] {
            let x = random_matrix(rows, k, &mut rng);
            let w = random_matrix(k, n, &mut rng);
            let b = rng.gaussian_vec(n);
            let packed = PackedGemm::pack(&w, &b);
            let a = FeatureBlock::from_matrix(&x);
            let scalar = packed.apply(&a, Dispatch::Scalar);
            let best = packed.apply(&a, best_dispatch());
            for c in 0..n {
                let (s, v) = (scalar.col(c), best.col(c));
                assert!(
                    s.iter().zip(v).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "column {c} differs between dispatch modes"
                );
            }
        }
    }

    #[test]
    fn apply_into_reuses_allocation_and_matches_apply() {
        let mut rng = Prng::seed_from_u64(3);
        let x = random_matrix(20, 6, &mut rng);
        let w = random_matrix(6, 3, &mut rng);
        let b = rng.gaussian_vec(3);
        let packed = PackedGemm::pack(&w, &b);
        let a = FeatureBlock::from_matrix(&x);
        let want = packed.apply(&a, Dispatch::Scalar);
        let mut out = FeatureBlock::zeros(100, 9); // stale shape
        packed.apply_into(&a, &mut out, Dispatch::Scalar);
        assert_eq!(out.to_rows(), want.to_rows());
    }

    #[test]
    fn zero_row_and_single_cell_shapes() {
        let packed = PackedGemm::pack(&Matrix::from_rows(&[vec![2.0]]), &[1.0]);
        let a = FeatureBlock::from_matrix(&Matrix::zeros(0, 1));
        let out = packed.apply(&a, Dispatch::Scalar);
        assert_eq!(out.rows(), 0);
        assert_eq!(out.cols(), 1);
        let one = FeatureBlock::from_matrix(&Matrix::from_rows(&[vec![3.0]]));
        let out = packed.apply(&one, Dispatch::Scalar);
        assert_eq!(out.get(0, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "input has 2 columns, expected 3")]
    fn gemm_input_width_mismatch_panics() {
        let packed = PackedGemm::pack(&Matrix::zeros(3, 2), &[0.0, 0.0]);
        let a = FeatureBlock::zeros(4, 2);
        let _ = packed.apply(&a, Dispatch::Scalar);
    }

    #[test]
    fn elu_tracks_f64_reference() {
        let mut rng = Prng::seed_from_u64(4);
        let mut xs: Vec<f32> = (0..4096).map(|_| (rng.gaussian() * 3.0) as f32).collect();
        xs.extend([0.0, -0.0, 1.0e-8, -1.0e-8, -20.0, -87.0, -120.0, 5.0, 80.0]);
        let want: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let x = f64::from(x);
                if x >= 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            })
            .collect();
        let mut got = xs.clone();
        elu_in_place(&mut got, Dispatch::Scalar);
        // Error scales with exp(x) = 1 + elu(x): computing `e - 1` in f32
        // inherits ulp(e)-sized cancellation near zero exactly like the
        // libm-based `x.exp() - 1.0` formulation does.
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (f64::from(g) - w).abs() < 3e-7 * (1.0 + w.abs()),
                "x={} elu {} vs reference {}",
                xs[i],
                g,
                w
            );
        }
    }

    #[test]
    fn elu_is_dispatch_invariant_bitwise() {
        let mut rng = Prng::seed_from_u64(5);
        // 1003: exercises the 8-lane body and the scalar tail.
        let mut xs: Vec<f32> = (0..1003).map(|_| (rng.gaussian() * 20.0) as f32).collect();
        xs.extend([0.0, -0.0, -1.0e-30, -88.0, -200.0, 90.0, f32::NAN]);
        let mut scalar = xs.clone();
        let mut best = xs;
        elu_in_place(&mut scalar, Dispatch::Scalar);
        elu_in_place(&mut best, best_dispatch());
        for (i, (s, b)) in scalar.iter().zip(&best).enumerate() {
            assert_eq!(
                s.to_bits(),
                b.to_bits(),
                "lane {i} differs between dispatch modes"
            );
        }
    }

    #[test]
    fn elu_positive_inputs_pass_through_bitwise() {
        let mut xs = vec![0.0f32, 1.5, 1.0e-30, 3.4e38, 7.25];
        let want = xs.clone();
        elu_in_place(&mut xs, best_dispatch());
        for (x, w) in xs.iter().zip(&want) {
            assert_eq!(x.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn active_dispatch_is_cached_and_stable() {
        // The env-variable override itself is exercised by the CI
        // kernel-parity job, which runs the differential suite in a
        // process with RDRP_KERNEL_DISPATCH=scalar.
        assert_eq!(active_dispatch(), active_dispatch());
    }
}
