//! Property-based tests for the numeric substrate.

use linalg::stats::{conformal_quantile, mean, quantile_higher, std_dev};
use linalg::vector::{argsort_desc, dot, logit, sigmoid, softmax};
use linalg::{random::Prng, solve, Matrix};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_associative(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
        c in small_matrix(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let diff = left.sub(&right).unwrap().frobenius_norm();
        let scale = left.frobenius_norm().max(1.0);
        prop_assert!(diff / scale < 1e-9);
    }

    #[test]
    fn transpose_of_product_is_reversed_product(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
    ) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn addition_commutes(a in small_matrix(4, 3), b in small_matrix(4, 3)) {
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn dot_is_bilinear(
        x in prop::collection::vec(-10.0..10.0f64, 8),
        y in prop::collection::vec(-10.0..10.0f64, 8),
        k in -5.0..5.0f64,
    ) {
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        prop_assert!((dot(&scaled, &y) - k * dot(&x, &y)).abs() < 1e-8);
    }

    #[test]
    fn sigmoid_monotone_and_bounded(a in -50.0..50.0f64, b in -50.0..50.0f64) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(sigmoid(lo) <= sigmoid(hi));
        prop_assert!((0.0..=1.0).contains(&sigmoid(a)));
    }

    #[test]
    fn logit_sigmoid_roundtrip(p in 1e-6..(1.0 - 1e-6)) {
        prop_assert!((sigmoid(logit(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn softmax_is_distribution(x in prop::collection::vec(-50.0..50.0f64, 1..16)) {
        let s = softmax(&x);
        prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn argsort_desc_sorts(v in prop::collection::vec(-100.0..100.0f64, 1..32)) {
        let idx = argsort_desc(&v);
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] >= v[w[1]]);
        }
        let mut seen = idx.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..v.len()).collect::<Vec<_>>());
    }

    #[test]
    fn quantile_monotone_in_level(
        v in prop::collection::vec(-100.0..100.0f64, 1..64),
        l1 in 0.0..1.0f64,
        l2 in 0.0..1.0f64,
    ) {
        let (lo, hi) = if l1 < l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(quantile_higher(&v, lo).unwrap() <= quantile_higher(&v, hi).unwrap());
    }

    #[test]
    fn conformal_quantile_at_least_median_level(
        v in prop::collection::vec(0.0..100.0f64, 3..64),
        alpha in 0.05..0.5f64,
    ) {
        // The conformal quantile at level alpha never falls below the
        // plain (1 - alpha) empirical quantile: the (n+1) correction is
        // conservative.
        let q = conformal_quantile(&v, alpha).unwrap();
        let plain = quantile_higher(&v, 1.0 - alpha).unwrap();
        prop_assert!(q >= plain);
    }

    #[test]
    fn spd_solve_inverts(seed in 0u64..1000) {
        // Build an SPD matrix A = B B^T + I and check the solver.
        let mut rng = Prng::seed_from_u64(seed);
        let n = 5;
        let b = Matrix::from_vec(n, n, rng.gaussian_vec(n * n));
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let x_true = rng.gaussian_vec(n);
        let rhs = a.matvec(&x_true).unwrap();
        let x = solve::solve_spd(&a, &rhs).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn mean_bounded_by_extremes(v in prop::collection::vec(-100.0..100.0f64, 1..64)) {
        let m = mean(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
        prop_assert!(std_dev(&v) >= 0.0);
    }
}
