//! Property-based tests for the numeric substrate, driven by seeded
//! random sampling (no external property-testing framework).

use linalg::stats::{conformal_quantile, mean, quantile_higher, std_dev};
use linalg::vector::{argsort_desc, dot, logit, sigmoid, softmax};
use linalg::{random::Prng, solve, Matrix};

const CASES: u64 = 64;

fn random_matrix(rows: usize, cols: usize, rng: &mut Prng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.uniform_in(-100.0, 100.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn random_vec(n: usize, lo: f64, hi: f64, rng: &mut Prng) -> Vec<f64> {
    (0..n).map(|_| rng.uniform_in(lo, hi)).collect()
}

#[test]
fn matmul_associative() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let a = random_matrix(3, 4, &mut rng);
        let b = random_matrix(4, 2, &mut rng);
        let c = random_matrix(2, 5, &mut rng);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let diff = left.sub(&right).unwrap().frobenius_norm();
        let scale = left.frobenius_norm().max(1.0);
        assert!(diff / scale < 1e-9, "seed {seed}");
    }
}

#[test]
fn transpose_of_product_is_reversed_product() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let a = random_matrix(3, 4, &mut rng);
        let b = random_matrix(4, 2, &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(
            lhs.sub(&rhs).unwrap().frobenius_norm() < 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn addition_commutes() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let a = random_matrix(4, 3, &mut rng);
        let b = random_matrix(4, 3, &mut rng);
        assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap(), "seed {seed}");
    }
}

#[test]
fn dot_is_bilinear() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let x = random_vec(8, -10.0, 10.0, &mut rng);
        let y = random_vec(8, -10.0, 10.0, &mut rng);
        let k = rng.uniform_in(-5.0, 5.0);
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        assert!(
            (dot(&scaled, &y) - k * dot(&x, &y)).abs() < 1e-8,
            "seed {seed}"
        );
    }
}

#[test]
fn sigmoid_monotone_and_bounded() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let a = rng.uniform_in(-50.0, 50.0);
        let b = rng.uniform_in(-50.0, 50.0);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert!(sigmoid(lo) <= sigmoid(hi), "seed {seed}");
        assert!((0.0..=1.0).contains(&sigmoid(a)), "seed {seed}");
    }
}

#[test]
fn logit_sigmoid_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let p = rng.uniform_in(1e-6, 1.0 - 1e-6);
        assert!((sigmoid(logit(p)) - p).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn softmax_is_distribution() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.below(15);
        let x = random_vec(n, -50.0, 50.0, &mut rng);
        let s = softmax(&x);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9, "seed {seed}");
        assert!(s.iter().all(|&v| v >= 0.0), "seed {seed}");
    }
}

#[test]
fn argsort_desc_sorts() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.below(31);
        let v = random_vec(n, -100.0, 100.0, &mut rng);
        let idx = argsort_desc(&v);
        for w in idx.windows(2) {
            assert!(v[w[0]] >= v[w[1]], "seed {seed}");
        }
        let mut seen = idx.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..v.len()).collect::<Vec<_>>(), "seed {seed}");
    }
}

#[test]
fn quantile_monotone_in_level() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.below(63);
        let v = random_vec(n, -100.0, 100.0, &mut rng);
        let l1 = rng.uniform();
        let l2 = rng.uniform();
        let (lo, hi) = if l1 < l2 { (l1, l2) } else { (l2, l1) };
        assert!(
            quantile_higher(&v, lo).unwrap() <= quantile_higher(&v, hi).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn conformal_quantile_at_least_median_level() {
    // The conformal quantile at level alpha never falls below the plain
    // (1 - alpha) empirical quantile: the (n+1) correction is conservative.
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 3 + rng.below(61);
        let v = random_vec(n, 0.0, 100.0, &mut rng);
        let alpha = rng.uniform_in(0.05, 0.5);
        let q = conformal_quantile(&v, alpha).unwrap();
        let plain = quantile_higher(&v, 1.0 - alpha).unwrap();
        assert!(q >= plain, "seed {seed}");
    }
}

#[test]
fn spd_solve_inverts() {
    // Build an SPD matrix A = B B^T + I and check the solver.
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 5;
        let b = Matrix::from_vec(n, n, rng.gaussian_vec(n * n));
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let x_true = rng.gaussian_vec(n);
        let rhs = a.matvec(&x_true).unwrap();
        let x = solve::solve_spd(&a, &rhs).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-7, "seed {seed}");
        }
    }
}

#[test]
fn mean_bounded_by_extremes() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let n = 1 + rng.below(63);
        let v = random_vec(n, -100.0, 100.0, &mut rng);
        let m = mean(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= lo - 1e-12 && m <= hi + 1e-12, "seed {seed}");
        assert!(std_dev(&v) >= 0.0, "seed {seed}");
    }
}
