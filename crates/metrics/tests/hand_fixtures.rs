//! Hand-computed fixtures for the ranking metrics.
//!
//! The unit tests in `qini.rs`/`aucc.rs` check *behavioral* properties on
//! synthetic data (good beats random, invariance to monotone transforms).
//! These fixtures pin the *arithmetic*: tiny datasets small enough to
//! trace by hand, with every intermediate written out in the comments, so
//! a refactor that changes binning, normalization, or trapezoid handling
//! is caught as an exact-value regression rather than a statistical drift.

use datasets::RctDataset;
use linalg::Matrix;
use metrics::{aucc_checked, aucc_from_labels, aucc_oracle, qini, uplift_at_k};

/// A dataset whose only meaningful content is `(t, y_r, y_c)`; features
/// are a single zero column (the metrics never look at `x`).
fn fixture(t: Vec<u8>, y_r: Vec<f64>, y_c: Vec<f64>) -> RctDataset {
    let n = t.len();
    RctDataset {
        x: Matrix::from_rows(&vec![vec![0.0]; n]),
        t,
        y_r,
        y_c,
        true_tau_r: None,
        true_tau_c: None,
    }
}

/// Descending scores that rank row 0 first, row n-1 last.
fn identity_ranking(n: usize) -> Vec<f64> {
    (0..n).map(|i| (n - i) as f64).collect()
}

// Eight rows, alternating treated/control, ranked 0..7:
//
//   row:  0  1  2  3  4  5  6  7
//   t:    1  0  1  0  1  0  1  0
//   y_r:  1  0  1  0  0  1  0  0
//
// Qini with 4 bins evaluates cutoffs k = 2, 4, 6, 8:
//   k=2: r1=1 (n1=1), r0=0 (n0=1)        -> q = 1 - 0*1/1 = 1
//   k=4: r1=2 (n1=2), r0=0 (n0=2)        -> q = 2
//   k=6: r1=2 (n1=3), r0=1 (n0=3)        -> q = 2 - 1*3/3 = 1
//   k=8: r1=2 (n1=4), r0=1 (n0=4)        -> q = 1   (total)
// Curve [0, 1, 2, 1, 1], dx = 1/4; trapezoid area between the curve and
// the diagonal to (1, 1):
//   (0.5-0.125 + 1.5-0.375 + 1.5-0.625 + 1.0-0.875) / 4 = 0.625
#[test]
fn qini_matches_hand_computation() {
    let d = fixture(
        vec![1, 0, 1, 0, 1, 0, 1, 0],
        vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
        vec![1.0; 8],
    );
    let q = qini(&d, &identity_ranking(8), 4);
    assert!((q - 0.625).abs() < 1e-12, "qini = {q}, expected 0.625");
}

// Same eight rows. Top half (rows 0..4): treated r1/n1 = 2/2 = 1, control
// r0/n0 = 0/2 = 0, so uplift@50% = 1. Full population: 2/4 - 1/4 = 0.25.
#[test]
fn uplift_at_k_matches_hand_computation() {
    let d = fixture(
        vec![1, 0, 1, 0, 1, 0, 1, 0],
        vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
        vec![1.0; 8],
    );
    let top_half = uplift_at_k(&d, &identity_ranking(8), 0.5);
    assert!((top_half - 1.0).abs() < 1e-12, "uplift@0.5 = {top_half}");
    let full = uplift_at_k(&d, &identity_ranking(8), 1.0);
    assert!((full - 0.25).abs() < 1e-12, "uplift@1.0 = {full}");
}

// Eight rows (t, y_r, y_c), ranked 0..7:
//
//   row:  0        1        2        3        4        5        6        7
//         (1,1,1)  (0,0,0)  (1,1,1)  (0,0,0)  (1,0,1)  (0,0,0)  (1,0,1)  (0,1,1)
//
// Full-population incrementals (difference in means x n):
//   treated: n1=4, r1=2, c1=4;  control: n0=4, r0=1, c0=1
//   total benefit = (2/4 - 1/4)*8 = 2;  total cost = (4/4 - 1/4)*8 = 6
// With 2 bins the curve is evaluated at k=4 and k=8:
//   k=4: treated {0,2}: r1=2, c1=2; control {1,3}: r0=0, c0=0
//        benefit = (1-0)*4 = 4 -> 4/2 = 2;  cost = (1-0)*4 = 4 -> 4/6 = 2/3
//   k=8: normalized endpoint (1, 1)
// Curve (0,0) -> (2/3, 2) -> (1, 1); trapezoid area:
//   2/3 * (0+2)/2 + 1/3 * (2+1)/2 = 2/3 + 1/2 = 7/6
#[test]
fn aucc_matches_hand_computation() {
    let d = fixture(
        vec![1, 0, 1, 0, 1, 0, 1, 0],
        vec![1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0],
        vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0],
    );
    let scores = identity_ranking(8);
    let a = aucc_from_labels(&d, &scores, 2);
    assert!((a - 7.0 / 6.0).abs() < 1e-12, "aucc = {a}, expected 7/6");
    // The checked variant agrees on rankable data ...
    assert_eq!(aucc_checked(&d, &scores, 2), Some(a));
}

// ... and declines on a degenerate sample: zeroing every cost makes the
// total incremental cost 0, which is not rankable by ROI.
#[test]
fn aucc_checked_declines_zero_cost_uplift() {
    let d = fixture(
        vec![1, 0, 1, 0, 1, 0, 1, 0],
        vec![1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0],
        vec![0.0; 8],
    );
    assert_eq!(aucc_checked(&d, &identity_ranking(8), 2), None);
}

// Four rows with ground truth tau_r = [2, 1, 1, 0], tau_c = [1, 1, 1, 1],
// ranked 0..3. Totals: benefit 4, cost 4. With 2 bins:
//   k=2: cum_r = 3, cum_c = 2 -> (0.5, 0.75)
//   k=4: (1, 1)
// Area = 0.5*(0+0.75)/2 + 0.5*(0.75+1)/2 = 0.1875 + 0.4375 = 0.625
#[test]
fn aucc_oracle_matches_hand_computation() {
    let mut d = fixture(vec![1, 0, 1, 0], vec![1.0; 4], vec![1.0; 4]);
    d.true_tau_r = Some(vec![2.0, 1.0, 1.0, 0.0]);
    d.true_tau_c = Some(vec![1.0; 4]);
    let o = aucc_oracle(&d, &identity_ranking(4), 2);
    assert!(
        (o - 0.625).abs() < 1e-12,
        "oracle aucc = {o}, expected 0.625"
    );
}
