//! Evaluation metrics for ROI ranking.
//!
//! The paper's metric is the **Area Under the Cost Curve (AUCC)**: sort
//! individuals by predicted ROI, sweep a treatment-fraction cutoff from 0
//! to 100%, estimate the *incremental* benefit and cost of treating each
//! top-k set from the RCT labels, and plot cumulative incremental benefit
//! against cumulative incremental cost (both normalized to end at 1). A
//! random ranking walks the diagonal (AUCC = 0.5); a perfect ROI ranking
//! bows the curve up-left (AUCC → 1).
//!
//! [`qini`] and [`uplift_at_k`] are standard companions used by the
//! ablation analysis, and [`rank_correlation`] supports model-selection
//! diagnostics.

pub mod aucc;
pub mod qini;
pub mod ranking;

pub use aucc::{aucc_checked, aucc_from_labels, aucc_oracle, cost_curve, CostCurvePoint};
pub use qini::{qini, uplift_at_k};
pub use ranking::rank_correlation;
