//! Rank-based diagnostics.

use linalg::vector::argsort_asc;

/// Spearman rank correlation between two score vectors.
///
/// Ties are broken by index (deterministic), which is adequate for the
/// continuous scores this crate sees; exact tie handling (midranks) is not
/// needed for diagnostics.
///
/// # Panics
/// Panics on length mismatch or fewer than 2 items.
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank_correlation: length mismatch");
    assert!(a.len() >= 2, "rank_correlation: need at least 2 items");
    let ranks = |v: &[f64]| {
        let order = argsort_asc(v);
        let mut r = vec![0.0; v.len()];
        for (rank, &idx) in order.iter().enumerate() {
            r[idx] = rank as f64;
        }
        r
    };
    linalg::stats::pearson(&ranks(a), &ranks(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((rank_correlation(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn invariant_to_monotone_transform() {
        let a = [0.3f64, 0.1, 0.9, 0.5];
        let b: Vec<f64> = a.iter().map(|&v| v.exp() * 7.0).collect();
        assert!((rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let mut rng = linalg::random::Prng::seed_from_u64(0);
        let a: Vec<f64> = (0..2000).map(|_| rng.uniform()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.uniform()).collect();
        assert!(rank_correlation(&a, &b).abs() < 0.05);
    }
}
