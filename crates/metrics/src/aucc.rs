//! Area Under the Cost Curve.

use datasets::RctDataset;
use linalg::vector::argsort_desc;

/// One point of the cost curve: cumulative incremental cost and benefit
/// (normalized so the final point is (1, 1)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCurvePoint {
    /// Normalized cumulative incremental cost at this cutoff.
    pub cost: f64,
    /// Normalized cumulative incremental benefit at this cutoff.
    pub benefit: f64,
}

tinyjson::json_struct!(CostCurvePoint { cost, benefit });

/// Estimated incremental outcome totals for treating the top-`k` set,
/// computed from RCT labels by difference-in-means scaled to the set size.
fn incremental(data: &RctDataset, order: &[usize], k: usize) -> (f64, f64) {
    let (mut n1, mut n0) = (0usize, 0usize);
    let (mut r1, mut r0, mut c1, mut c0) = (0.0, 0.0, 0.0, 0.0);
    for &i in &order[..k] {
        if data.t[i] == 1 {
            n1 += 1;
            r1 += data.y_r[i];
            c1 += data.y_c[i];
        } else {
            n0 += 1;
            r0 += data.y_r[i];
            c0 += data.y_c[i];
        }
    }
    if n1 == 0 || n0 == 0 {
        return (0.0, 0.0);
    }
    let scale = k as f64;
    let d_r = (r1 / n1 as f64 - r0 / n0 as f64) * scale;
    let d_c = (c1 / n1 as f64 - c0 / n0 as f64) * scale;
    (d_c, d_r)
}

/// Computes the cost curve of ranking `data` by `scores` (descending),
/// evaluated at `bins` evenly spaced cutoffs.
///
/// The curve starts at (0, 0) and is normalized by the full-population
/// incremental totals, so it ends at (1, 1). Intermediate points can
/// exceed 1 or dip below 0 — that is real (finite-sample uplift estimates
/// are noisy and a good ranking front-loads benefit).
///
/// # Panics
/// Panics on length mismatch, empty data, fewer than 2 bins, or when the
/// full-population incremental cost/benefit is not positive (the paper's
/// Assumption 4 guarantees positivity in expectation; a non-positive total
/// means the sample is too degenerate to rank).
pub fn cost_curve(data: &RctDataset, scores: &[f64], bins: usize) -> Vec<CostCurvePoint> {
    assert_eq!(
        data.len(),
        scores.len(),
        "cost_curve: scores length mismatch"
    );
    assert!(!data.is_empty(), "cost_curve: empty dataset");
    assert!(bins >= 2, "cost_curve: need at least 2 bins");
    let order = argsort_desc(scores);
    let n = data.len();
    let (total_c, total_r) = incremental(data, &order, n);
    assert!(
        total_c > 0.0 && total_r > 0.0,
        "cost_curve: non-positive total incremental cost ({total_c}) or benefit ({total_r})"
    );
    let mut points = Vec::with_capacity(bins + 1);
    points.push(CostCurvePoint {
        cost: 0.0,
        benefit: 0.0,
    });
    for b in 1..=bins {
        let k = (n * b / bins).max(1);
        let (d_c, d_r) = incremental(data, &order, k);
        points.push(CostCurvePoint {
            cost: d_c / total_c,
            benefit: d_r / total_r,
        });
    }
    // Exactness at the endpoint (the loop's last k == n).
    let last = points.last_mut().expect("non-empty by construction");
    last.cost = 1.0;
    last.benefit = 1.0;
    points
}

/// Area under a cost curve via the trapezoid rule over the cost axis.
///
/// Non-monotone cost segments (possible with noisy finite-sample
/// estimates) contribute signed area, which keeps the metric consistent:
/// a random ranking still averages 0.5.
pub fn area_under(points: &[CostCurvePoint]) -> f64 {
    assert!(points.len() >= 2, "area_under: need at least 2 points");
    let mut area = 0.0;
    for w in points.windows(2) {
        let dx = w[1].cost - w[0].cost;
        area += dx * 0.5 * (w[0].benefit + w[1].benefit);
    }
    area
}

/// AUCC of ranking `data` by `scores`, estimated from RCT labels with
/// `bins` cutoffs (the paper uses percentiles; 100 bins is the default
/// choice in the experiments).
pub fn aucc_from_labels(data: &RctDataset, scores: &[f64], bins: usize) -> f64 {
    area_under(&cost_curve(data, scores, bins))
}

/// Non-panicking [`aucc_from_labels`]: returns `None` when the sample is
/// too degenerate to rank (a treatment group is missing, or the total
/// incremental cost/benefit is non-positive). Bootstrap resamples of
/// small calibration sets hit these cases routinely.
pub fn aucc_checked(data: &RctDataset, scores: &[f64], bins: usize) -> Option<f64> {
    if data.is_empty() || data.len() != scores.len() || bins < 2 {
        return None;
    }
    let order = argsort_desc(scores);
    let (total_c, total_r) = incremental(data, &order, data.len());
    if total_c <= 0.0 || total_r <= 0.0 {
        return None;
    }
    Some(area_under(&cost_curve(data, scores, bins)))
}

/// Oracle AUCC: uses the generator's ground-truth `τ^r`, `τ^c` instead of
/// label-based estimates. Only available on synthetic data; useful as the
/// noise-free upper-bound diagnostic.
///
/// # Panics
/// Panics if the dataset carries no ground truth.
pub fn aucc_oracle(data: &RctDataset, scores: &[f64], bins: usize) -> f64 {
    let tau_r = data
        .true_tau_r
        .as_ref()
        .expect("aucc_oracle: dataset has no ground-truth tau_r");
    let tau_c = data
        .true_tau_c
        .as_ref()
        .expect("aucc_oracle: dataset has no ground-truth tau_c");
    assert_eq!(
        data.len(),
        scores.len(),
        "aucc_oracle: scores length mismatch"
    );
    assert!(bins >= 2, "aucc_oracle: need at least 2 bins");
    let order = argsort_desc(scores);
    let n = data.len();
    let total_r: f64 = tau_r.iter().sum();
    let total_c: f64 = tau_c.iter().sum();
    assert!(total_r > 0.0 && total_c > 0.0);
    let mut points = vec![CostCurvePoint {
        cost: 0.0,
        benefit: 0.0,
    }];
    let mut cum_r = 0.0;
    let mut cum_c = 0.0;
    let mut next_idx = 0usize;
    for b in 1..=bins {
        let k = (n * b / bins).max(1);
        while next_idx < k {
            let i = order[next_idx];
            cum_r += tau_r[i];
            cum_c += tau_c[i];
            next_idx += 1;
        }
        points.push(CostCurvePoint {
            cost: cum_c / total_c,
            benefit: cum_r / total_r,
        });
    }
    area_under(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;
    use linalg::random::Prng;

    fn test_data(n: usize, seed: u64) -> RctDataset {
        CriteoLike::new().sample(n, Population::Base, &mut Prng::seed_from_u64(seed))
    }

    #[test]
    fn oracle_ranking_beats_random_beats_antioracle() {
        let data = test_data(20_000, 0);
        let true_roi = data.true_roi().unwrap();
        let mut rng = Prng::seed_from_u64(1);
        let random: Vec<f64> = (0..data.len()).map(|_| rng.uniform()).collect();
        let anti: Vec<f64> = true_roi.iter().map(|&v| -v).collect();

        let on_labels = |s: &[f64]| aucc_from_labels(&data, s, 100);
        let good = on_labels(&true_roi);
        let rand = on_labels(&random);
        let bad = on_labels(&anti);
        assert!(good > rand + 0.05, "good {good} rand {rand}");
        assert!(rand > bad + 0.05, "rand {rand} bad {bad}");
        assert!((rand - 0.5).abs() < 0.08, "random AUCC {rand}");
    }

    #[test]
    fn oracle_metric_is_cleaner_than_label_metric() {
        let data = test_data(5_000, 2);
        let true_roi = data.true_roi().unwrap();
        let o = aucc_oracle(&data, &true_roi, 100);
        assert!(o > 0.55, "oracle-sorted oracle AUCC {o}");
        // Oracle AUCC of a random ranking is ~0.5.
        let mut rng = Prng::seed_from_u64(3);
        let random: Vec<f64> = (0..data.len()).map(|_| rng.uniform()).collect();
        let r = aucc_oracle(&data, &random, 100);
        assert!((r - 0.5).abs() < 0.03, "random oracle AUCC {r}");
    }

    #[test]
    fn curve_endpoints_are_normalized() {
        let data = test_data(3_000, 4);
        let scores = data.true_roi().unwrap();
        let curve = cost_curve(&data, &scores, 20);
        assert_eq!(curve.len(), 21);
        assert_eq!(curve[0].cost, 0.0);
        assert_eq!(curve[0].benefit, 0.0);
        assert_eq!(curve.last().unwrap().cost, 1.0);
        assert_eq!(curve.last().unwrap().benefit, 1.0);
    }

    #[test]
    fn aucc_invariant_to_monotone_transform_of_scores() {
        let data = test_data(4_000, 5);
        let scores = data.true_roi().unwrap();
        let transformed: Vec<f64> = scores.iter().map(|&s| (5.0 * s).exp() + 3.0).collect();
        let a = aucc_from_labels(&data, &scores, 50);
        let b = aucc_from_labels(&data, &transformed, 50);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn diagonal_curve_has_half_area() {
        let points: Vec<CostCurvePoint> = (0..=10)
            .map(|i| CostCurvePoint {
                cost: i as f64 / 10.0,
                benefit: i as f64 / 10.0,
            })
            .collect();
        assert!((area_under(&points) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concave_curve_has_more_than_half_area() {
        let points: Vec<CostCurvePoint> = (0..=10)
            .map(|i| {
                let x = i as f64 / 10.0;
                CostCurvePoint {
                    cost: x,
                    benefit: x.sqrt(),
                }
            })
            .collect();
        assert!(area_under(&points) > 0.6);
    }

    #[test]
    #[should_panic(expected = "scores length mismatch")]
    fn mismatch_panics() {
        let data = test_data(100, 6);
        let _ = aucc_from_labels(&data, &[1.0], 10);
    }
}
