//! Qini coefficient and uplift-at-k.
//!
//! These target *revenue uplift ranking* (a single outcome), complementing
//! AUCC's cost-aware ROI ranking; the ablation studies use them to see
//! whether a method ranks benefit well even when its ROI ranking is poor.

use datasets::RctDataset;
use linalg::vector::argsort_desc;

/// Qini coefficient of ranking `data` by `scores`, on the revenue outcome.
///
/// The Qini curve at cutoff `k` is the incremental number of responders
/// `R_t(k) − R_c(k)·N_t(k)/N_c(k)`; the coefficient is the area between
/// the model's curve and the random diagonal, normalized by the total
/// incremental responders. Positive = better than random.
///
/// # Panics
/// Panics on length mismatch, empty data, or fewer than 2 bins.
pub fn qini(data: &RctDataset, scores: &[f64], bins: usize) -> f64 {
    assert_eq!(data.len(), scores.len(), "qini: scores length mismatch");
    assert!(!data.is_empty(), "qini: empty dataset");
    assert!(bins >= 2, "qini: need at least 2 bins");
    let order = argsort_desc(scores);
    let n = data.len();
    let mut curve = Vec::with_capacity(bins + 1);
    curve.push(0.0);
    for b in 1..=bins {
        let k = (n * b / bins).max(1);
        let (mut n1, mut n0) = (0usize, 0usize);
        let (mut r1, mut r0) = (0.0, 0.0);
        for &i in &order[..k] {
            if data.t[i] == 1 {
                n1 += 1;
                r1 += data.y_r[i];
            } else {
                n0 += 1;
                r0 += data.y_r[i];
            }
        }
        let q = if n0 == 0 {
            r1
        } else {
            r1 - r0 * n1 as f64 / n0 as f64
        };
        curve.push(q);
    }
    let total = *curve.last().expect("non-empty");
    if total.abs() < 1e-12 {
        return 0.0;
    }
    // Area between curve and the straight line to (1, total), x-spaced
    // uniformly in treated fraction.
    let mut area = 0.0;
    let dx = 1.0 / bins as f64;
    for (b, w) in curve.windows(2).enumerate() {
        let x0 = b as f64 * dx;
        let x1 = x0 + dx;
        let model = 0.5 * (w[0] + w[1]);
        let diag = 0.5 * total * (x0 + x1);
        area += dx * (model - diag);
    }
    area / total.abs()
}

/// Estimated revenue uplift among the top `k_fraction` of individuals by
/// score, from RCT labels (difference in means within the top set).
///
/// # Panics
/// Panics if `k_fraction` is outside `(0, 1]` or lengths mismatch.
pub fn uplift_at_k(data: &RctDataset, scores: &[f64], k_fraction: f64) -> f64 {
    assert!(
        k_fraction > 0.0 && k_fraction <= 1.0,
        "uplift_at_k: fraction must be in (0, 1]"
    );
    assert_eq!(
        data.len(),
        scores.len(),
        "uplift_at_k: scores length mismatch"
    );
    let order = argsort_desc(scores);
    let k = ((data.len() as f64 * k_fraction).round() as usize).clamp(1, data.len());
    let (mut n1, mut n0) = (0usize, 0usize);
    let (mut r1, mut r0) = (0.0, 0.0);
    for &i in &order[..k] {
        if data.t[i] == 1 {
            n1 += 1;
            r1 += data.y_r[i];
        } else {
            n0 += 1;
            r0 += data.y_r[i];
        }
    }
    if n1 == 0 || n0 == 0 {
        return 0.0;
    }
    r1 / n1 as f64 - r0 / n0 as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;
    use linalg::random::Prng;

    fn data(n: usize, seed: u64) -> RctDataset {
        CriteoLike::new().sample(n, Population::Base, &mut Prng::seed_from_u64(seed))
    }

    #[test]
    fn qini_positive_for_good_ranking() {
        let d = data(20_000, 0);
        let tau_r = d.true_tau_r.clone().unwrap();
        let q = qini(&d, &tau_r, 50);
        assert!(q > 0.02, "qini {q}");
        let mut rng = Prng::seed_from_u64(1);
        let random: Vec<f64> = (0..d.len()).map(|_| rng.uniform()).collect();
        let qr = qini(&d, &random, 50);
        assert!(q > qr, "good {q} vs random {qr}");
        assert!(qr.abs() < 0.05, "random qini {qr}");
    }

    #[test]
    fn uplift_at_k_decreasing_in_k_for_good_ranking() {
        let d = data(30_000, 2);
        let tau_r = d.true_tau_r.clone().unwrap();
        let top10 = uplift_at_k(&d, &tau_r, 0.1);
        let all = uplift_at_k(&d, &tau_r, 1.0);
        assert!(top10 > all, "top10 {top10} vs all {all}");
        assert!(all > 0.0);
    }

    #[test]
    fn uplift_at_full_fraction_is_ate() {
        let d = data(10_000, 3);
        let scores = vec![0.0; d.len()];
        let full = uplift_at_k(&d, &scores, 1.0);
        // Direct ATE computation.
        let (mut n1, mut n0, mut r1, mut r0) = (0usize, 0usize, 0.0, 0.0);
        for i in 0..d.len() {
            if d.t[i] == 1 {
                n1 += 1;
                r1 += d.y_r[i];
            } else {
                n0 += 1;
                r0 += d.y_r[i];
            }
        }
        let ate = r1 / n1 as f64 - r0 / n0 as f64;
        assert!((full - ate).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn bad_fraction_panics() {
        let d = data(100, 4);
        let scores = vec![0.0; d.len()];
        let _ = uplift_at_k(&d, &scores, 0.0);
    }
}
