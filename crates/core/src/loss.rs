//! The DRP loss (paper Eq. 2).
//!
//! With `r̂oi_i = σ(ŝ_i)`, the bracketed per-sample term simplifies —
//! `ln(r̂oi/(1−r̂oi)) = ŝ` and `ln(1−r̂oi) = −softplus(ŝ)` — to
//!
//! ```text
//! L(ŝ) = −[ (1/N₁) Σ_{t=1} (y^r ŝ − y^c softplus(ŝ))
//!         − (1/N₀) Σ_{t=0} (y^r ŝ − y^c softplus(ŝ)) ]
//! ```
//!
//! whose per-sample gradient is `−w_i (y^r_i − y^c_i σ(ŝ_i))` with
//! `w_i = 1/N₁` for treated and `−1/N₀` for control rows (`N₁`, `N₀`
//! counted within the minibatch, as in the paper's batch training).
//!
//! Convexity (Theorem 2 of [5]): for a *shared* score `s`, the derivative
//! `L'(s) = τ̄^c σ(s) − τ̄^r` is increasing whenever the mean cost uplift
//! `τ̄^c > 0` (Assumption 4), so the loss has a unique minimum at
//! `σ(s*) = τ̄^r / τ̄^c` — the population ROI. This is what Algorithm 2's
//! binary search exploits ([`crate::search`]).

use linalg::vector::{sigmoid, softplus};
use nn::Objective;

/// The DRP training objective over a fixed RCT dataset's labels.
#[derive(Debug, Clone)]
pub struct DrpObjective {
    t: Vec<u8>,
    y_r: Vec<f64>,
    y_c: Vec<f64>,
}

impl DrpObjective {
    /// Builds the objective from full-dataset labels.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn new(t: Vec<u8>, y_r: Vec<f64>, y_c: Vec<f64>) -> Self {
        assert_eq!(t.len(), y_r.len(), "DrpObjective: t/y_r length mismatch");
        assert_eq!(t.len(), y_c.len(), "DrpObjective: t/y_c length mismatch");
        DrpObjective { t, y_r, y_c }
    }
}

impl Objective for DrpObjective {
    fn loss_and_grad(&self, preds: &[f64], rows: &[usize]) -> (f64, Vec<f64>) {
        assert_eq!(preds.len(), rows.len(), "DRP: preds/rows length mismatch");
        let n1 = rows.iter().filter(|&&i| self.t[i] == 1).count();
        let n0 = rows.len() - n1;
        // A batch with only one group carries no uplift signal: the loss
        // contribution is defined as zero (gradient zero), which simply
        // skips such (rare, small-batch) steps.
        if n1 == 0 || n0 == 0 {
            return (0.0, vec![0.0; preds.len()]);
        }
        let w1 = 1.0 / n1 as f64;
        let w0 = 1.0 / n0 as f64;
        let mut loss = 0.0;
        let mut grad = Vec::with_capacity(preds.len());
        for (&s, &i) in preds.iter().zip(rows) {
            let w = if self.t[i] == 1 { w1 } else { -w0 };
            let term = self.y_r[i] * s - self.y_c[i] * softplus(s);
            loss -= w * term;
            grad.push(-w * (self.y_r[i] - self.y_c[i] * sigmoid(s)));
        }
        (loss, grad)
    }
}

/// Derivative of the DRP loss at a *shared* score `s` over a dataset
/// (Algorithm 2, line 2): `L'(s) = τ̄^c σ(s) − τ̄^r` where `τ̄^r`, `τ̄^c`
/// are the difference-in-means uplift estimates.
///
/// # Panics
/// Panics if either treatment group is empty.
pub fn shared_score_derivative(s: f64, t: &[u8], y_r: &[f64], y_c: &[f64]) -> f64 {
    let (tau_r, tau_c) = mean_uplifts(t, y_r, y_c);
    tau_c * sigmoid(s) - tau_r
}

/// Difference-in-means estimates `(τ̄^r, τ̄^c)` from RCT labels.
///
/// # Panics
/// Panics on length mismatches or if either treatment group is empty.
pub fn mean_uplifts(t: &[u8], y_r: &[f64], y_c: &[f64]) -> (f64, f64) {
    assert_eq!(t.len(), y_r.len(), "mean_uplifts: t/y_r length mismatch");
    assert_eq!(t.len(), y_c.len(), "mean_uplifts: t/y_c length mismatch");
    let (mut n1, mut n0) = (0usize, 0usize);
    let (mut r1, mut r0, mut c1, mut c0) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..t.len() {
        if t[i] == 1 {
            n1 += 1;
            r1 += y_r[i];
            c1 += y_c[i];
        } else {
            n0 += 1;
            r0 += y_r[i];
            c0 += y_c[i];
        }
    }
    assert!(n1 > 0 && n0 > 0, "mean_uplifts: need both treatment groups");
    (
        r1 / n1 as f64 - r0 / n0 as f64,
        c1 / n1 as f64 - c0 / n0 as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::Objective;

    fn toy() -> DrpObjective {
        DrpObjective::new(
            vec![1, 1, 0, 0, 1, 0],
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.0, 0.0, 1.0],
        )
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let obj = toy();
        let preds = [0.3, -1.0, 0.5, 2.0, -0.2, 0.0];
        let rows = [0, 1, 2, 3, 4, 5];
        let (_, grad) = obj.loss_and_grad(&preds, &rows);
        let eps = 1e-6;
        for j in 0..preds.len() {
            let mut pp = preds.to_vec();
            pp[j] += eps;
            let mut pm = preds.to_vec();
            pm[j] -= eps;
            let numeric = (obj.loss(&pp, &rows) - obj.loss(&pm, &rows)) / (2.0 * eps);
            assert!(
                (numeric - grad[j]).abs() < 1e-6,
                "grad[{j}]: numeric {numeric} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn single_group_batch_is_inert() {
        let obj = toy();
        // Rows 0, 1, 4 are all treated.
        let (loss, grad) = obj.loss_and_grad(&[0.1, 0.2, 0.3], &[0, 1, 4]);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn shared_score_loss_is_convex_in_s() {
        // Sample the shared-score loss on a grid; the derivative must be
        // increasing (convexity) given positive mean cost uplift.
        let t = vec![1, 1, 1, 0, 0, 0];
        let y_r = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let y_c = vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0];
        let mut last = f64::NEG_INFINITY;
        for k in -20..=20 {
            let s = k as f64 / 4.0;
            let d = shared_score_derivative(s, &t, &y_r, &y_c);
            assert!(d >= last, "derivative decreased at s = {s}");
            last = d;
        }
    }

    #[test]
    fn stationary_point_is_population_roi() {
        let t = vec![1, 1, 1, 0, 0, 0];
        let y_r = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]; // tau_r = 1/3
        let y_c = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0]; // tau_c = 2/3
        let (tr, tc) = mean_uplifts(&t, &y_r, &y_c);
        assert!((tr - 1.0 / 3.0).abs() < 1e-12);
        assert!((tc - 2.0 / 3.0).abs() < 1e-12);
        // L'(s) = 0 at sigma(s) = 0.5.
        let s_star = linalg::vector::logit(0.5);
        assert!(shared_score_derivative(s_star, &t, &y_r, &y_c).abs() < 1e-12);
    }

    #[test]
    fn gradient_direction_pushes_roi_toward_ratio() {
        // One treated converter with cost: gradient at roi < true ratio
        // must be negative (increase s).
        let obj = DrpObjective::new(vec![1, 0], vec![1.0, 0.0], vec![1.0, 0.0]);
        // true ratio = 1.0; at s = 0 (roi = 0.5) gradient should push up.
        let (_, grad) = obj.loss_and_grad(&[0.0, 0.0], &[0, 1]);
        assert!(grad[0] < 0.0, "treated gradient {}", grad[0]);
    }

    #[test]
    #[should_panic(expected = "need both treatment groups")]
    fn mean_uplifts_single_group_panics() {
        let _ = mean_uplifts(&[1, 1], &[1.0, 0.0], &[1.0, 0.0]);
    }
}
