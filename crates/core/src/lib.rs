//! DRP and rDRP: direct and robust direct ROI prediction.
//!
//! This crate is the paper's primary contribution, built on the substrate
//! crates:
//!
//! * [`DrpModel`] — the AAAI'23 Direct ROI Prediction baseline: a
//!   one-hidden-layer network trained with the convex loss of Eq. (2)
//!   ([`loss::DrpObjective`]), whose sigmoid output is an unbiased ROI
//!   point estimate at convergence.
//! * [`search::find_roi_star`] — Algorithm 2: binary search for the loss
//!   convergence point on the calibration set (Assumption 5 treats
//!   `σ(s*)` as the reference "true" ROI).
//! * MC-dropout uncertainty ([`DrpModel::mc_roi`]) — the `r̂(x)` scalar.
//! * Conformal calibration (Algorithm 3) via the `conformal` crate:
//!   score `|roi* − r̂oi|/r̂(x)`, quantile `q̂`, interval
//!   `[r̂oi ± r̂(x)q̂]`.
//! * [`calibrate::CalibrationForm`] — the heuristic point-estimate
//!   re-ranking forms of Eq. (5a)–(5c), selected on the calibration set.
//! * [`Rdrp`] — Algorithm 4, tying everything together.
//! * [`allocator::greedy_allocate`] — Algorithm 1, the budgeted greedy
//!   C-BTAP solver that consumes the ROI ranking.
//!
//! Every fitting path is fallible: construction-time problems surface as
//! [`PipelineError`], fitting problems as [`uplift::FitError`] (which
//! wraps [`nn::TrainError`]), and recoverable calibration degeneracies as
//! [`calibrate::DegradedMode`] diagnostics rather than errors.
//!
//! # Example
//!
//! ```
//! use datasets::generator::{Population, RctGenerator};
//! use datasets::CriteoLike;
//! use linalg::random::Prng;
//! use rdrp::{greedy_allocate, DrpConfig, Rdrp, RdrpConfig};
//!
//! let mut rng = Prng::seed_from_u64(7);
//! let gen = CriteoLike::new();
//! let train = gen.sample(2_000, Population::Base, &mut rng);
//! let calibration = gen.sample(800, Population::Base, &mut rng);
//!
//! let mut model = Rdrp::new(RdrpConfig {
//!     drp: DrpConfig { epochs: 3, ..DrpConfig::default() },
//!     mc_passes: 5,
//!     ..RdrpConfig::default()
//! }).unwrap();
//! model
//!     .fit_with_calibration(&train, &calibration, &mut rng, &obs::Obs::disabled())
//!     .unwrap();
//!
//! let customers = gen.sample(500, Population::Base, &mut rng);
//! let scores = model.predict_scores(&customers.x, &mut rng, &obs::Obs::disabled());
//! let costs = customers.true_tau_c.clone().unwrap();
//! let budget = 0.3 * costs.iter().sum::<f64>();
//! let allocation = greedy_allocate(&scores, &costs, budget);
//! assert!(allocation.spent <= budget);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod allocator;
pub mod artifact;
pub mod bootstrap_uq;
pub mod calibrate;
pub mod config;
pub mod drp;
pub mod error;
pub mod karm;
pub mod loss;
pub mod mckp;
pub mod methods;
pub mod multi;
pub mod persist;
pub mod rdrp;
pub mod search;

pub use allocator::{greedy_allocate, optimal_allocate_dp, Allocation};
pub use artifact::FORMAT_VERSION;
pub use bootstrap_uq::BootstrapDrp;
pub use calibrate::{CalibrationForm, DegradedMode};
pub use config::{DrpConfig, RdrpConfig};
pub use drp::DrpModel;
pub use error::PipelineError;
pub use karm::{
    build_karm, karm_method_names, load_karm_method, save_karm_method, KArmMethodSpec,
    KArmRoiMethod, PerArm, KARM_METHODS,
};
pub use loss::DrpObjective;
pub use mckp::{mckp_allocate, multi_allocation_value, MultiAllocation};
pub use methods::{build, load_method, method_names, save_method, MethodConfig, RoiMethod};
#[allow(deprecated)]
pub use multi::greedy_allocate_multi;
pub use multi::DivideAndConquerRdrp;
pub use persist::{atomic_write_artifact, Persist, PersistError};
pub use rdrp::{Rdrp, RdrpDiagnostics, SCORING_SEED};
pub use search::{find_roi_star, SearchError};
