//! The versioned model-artifact envelope.
//!
//! Every persisted model file is one JSON object:
//!
//! ```json
//! {
//!   "format_version": 1,
//!   "method": "<registry tag, e.g. \"rdrp\" or \"tpm-sl\">",
//!   "body": { ... method-specific payload ... },
//!   "checksum": "<hex FNV-1a-64 of the body's compact JSON>"
//! }
//! ```
//!
//! The `method` tag doubles as the registry name
//! ([`crate::methods::METHODS`]), so a loader can reconstruct the right
//! model type from the file alone — no out-of-band `--kind` flag. The
//! `format_version` gates schema evolution: a reader refuses versions it
//! does not understand instead of misparsing them. The `checksum` guards
//! *integrity*: a bit flipped inside the body after the file was written
//! surfaces as [`PersistError::Checksum`] at load, not as a model that
//! silently scores differently. Artifacts written before the field
//! existed still load (the check runs only when the field is present),
//! which keeps the committed golden fixtures valid.

use crate::persist::PersistError;
use tinyjson::{FromJson, JsonError, ToJson, Value};

/// The artifact schema version binary (two-arm) models read and write.
/// Kept at 1 so pre-refactor binary artifacts — including the committed
/// golden fixtures — stay byte-for-byte stable.
pub const FORMAT_VERSION: u64 = 1;

/// The schema version for K-arm artifacts: identical to v1 plus an
/// `n_arms` field (total arms *including* control) between
/// `format_version` and `method`. Binary artifacts stay on v1; readers
/// accept both and treat a v1 file as `n_arms = 2`.
pub const KARM_FORMAT_VERSION: u64 = 2;

/// Hex FNV-1a-64 of a body's compact JSON rendering — the integrity
/// stamp [`encode`] writes and [`decode`] verifies.
pub fn body_checksum(body: &Value) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tinyjson::to_string(body).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// Wraps a method body in the versioned envelope.
pub fn encode(method: &str, body: Value) -> Value {
    let checksum = body_checksum(&body);
    Value::Obj(vec![
        ("format_version".to_string(), FORMAT_VERSION.to_json()),
        ("method".to_string(), method.to_string().to_json()),
        ("body".to_string(), body),
        ("checksum".to_string(), checksum.to_json()),
    ])
}

/// Wraps a K-arm method body in the v2 envelope carrying `n_arms`.
pub fn encode_with_arms(method: &str, n_arms: u8, body: Value) -> Value {
    let checksum = body_checksum(&body);
    Value::Obj(vec![
        ("format_version".to_string(), KARM_FORMAT_VERSION.to_json()),
        ("n_arms".to_string(), u64::from(n_arms).to_json()),
        ("method".to_string(), method.to_string().to_json()),
        ("body".to_string(), body),
        ("checksum".to_string(), checksum.to_json()),
    ])
}

/// Total arm count (including control) declared by an envelope: the v2
/// `n_arms` field, or 2 for a v1 (binary) artifact.
///
/// # Errors
/// [`PersistError::Format`] when a v2 envelope's `n_arms` is missing,
/// non-integer, or below 2.
pub fn artifact_n_arms(v: &Value) -> Result<u8, PersistError> {
    if u64::from_json(v.fetch("format_version")) != Ok(KARM_FORMAT_VERSION) {
        return Ok(2);
    }
    let n = u64::from_json(v.fetch("n_arms"))
        .map_err(|_| PersistError::Format("v2 artifact has no integer n_arms field".to_string()))?;
    if !(2..=u64::from(u8::MAX)).contains(&n) {
        return Err(PersistError::Format(format!(
            "artifact n_arms {n} out of range 2..=255"
        )));
    }
    Ok(n as u8)
}

/// Unwraps the envelope, returning the method tag and the body.
///
/// # Errors
/// [`PersistError::Format`] when the value is not an envelope or its
/// `format_version` is unsupported; [`PersistError::Checksum`] when a
/// `checksum` field is present and does not match the body.
pub fn decode(v: &Value) -> Result<(String, &Value), PersistError> {
    let version = u64::from_json(v.fetch("format_version")).map_err(|_| {
        PersistError::Format(
            "not a model artifact: missing or non-integer format_version".to_string(),
        )
    })?;
    if version != FORMAT_VERSION && version != KARM_FORMAT_VERSION {
        return Err(PersistError::Format(format!(
            "unsupported artifact format_version {version} (this build reads \
             {FORMAT_VERSION} and {KARM_FORMAT_VERSION})"
        )));
    }
    let method = String::from_json(v.fetch("method"))
        .map_err(|_| PersistError::Format("artifact has no method tag".to_string()))?;
    let body = v.fetch("body");
    if matches!(body, Value::Null) {
        return Err(PersistError::Format(format!(
            "artifact {method:?} has no body"
        )));
    }
    match v.fetch("checksum") {
        // Pre-checksum artifacts carry no stamp; nothing to verify.
        Value::Null => {}
        stamp => {
            let expected = String::from_json(stamp).map_err(|_| {
                PersistError::Format("artifact checksum is not a string".to_string())
            })?;
            let computed = body_checksum(body);
            if expected != computed {
                return Err(PersistError::Checksum { expected, computed });
            }
        }
    }
    Ok((method, body))
}

/// [`decode`] that additionally checks the tag against what the caller
/// expects (`accept` returns `true` for tags it can load). Used by the
/// typed [`crate::Persist`] impls so `Rdrp::load` on a DRP artifact is a
/// [`PersistError::Format`], not a field-level parse error.
///
/// # Errors
/// Everything [`decode`] raises, plus [`PersistError::Format`] when the
/// tag is not accepted.
pub fn decode_expecting<'v>(
    v: &'v Value,
    expectation: &str,
    accept: impl Fn(&str) -> bool,
) -> Result<(String, &'v Value), PersistError> {
    let (method, body) = decode(v)?;
    if !accept(&method) {
        return Err(PersistError::Format(format!(
            "artifact holds method {method:?}, expected {expectation}"
        )));
    }
    Ok((method, body))
}

/// Parses a JSON string into `(method tag, body)` via [`decode`].
///
/// # Errors
/// [`PersistError::Serde`] when the string is not JSON,
/// [`PersistError::Format`] when it is not an envelope.
pub fn parse(json: &str) -> Result<(String, Value), PersistError> {
    let v = tinyjson::from_str(json)?;
    let (method, body) = decode(&v)?;
    Ok((method, body.clone()))
}

/// Re-serializes an envelope to the pretty JSON written on disk.
pub fn render(method: &str, body: Value) -> String {
    tinyjson::to_string_pretty(&encode(method, body))
}

/// [`render`] for the v2 K-arm envelope.
pub fn render_with_arms(method: &str, n_arms: u8, body: Value) -> String {
    tinyjson::to_string_pretty(&encode_with_arms(method, n_arms, body))
}

/// Shared body shape for the `*-mc` ablation artifacts: the wrapped
/// model plus the MC-sweep hyperparameters the scorer needs.
pub(crate) fn mc_body(model: Value, mc_passes: usize, std_floor: f64) -> Value {
    Value::Obj(vec![
        ("model".to_string(), model),
        ("mc_passes".to_string(), mc_passes.to_json()),
        ("std_floor".to_string(), std_floor.to_json()),
    ])
}

/// Decodes a [`mc_body`] back into its parts.
pub(crate) fn mc_body_parts(body: &Value) -> Result<(&Value, usize, f64), JsonError> {
    let model = body.fetch("model");
    let mc_passes = usize::from_json(body.fetch("mc_passes"))?;
    let std_floor = f64::from_json(body.fetch("std_floor"))?;
    Ok((model, mc_passes, std_floor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_tag_and_body() {
        let body = Value::Obj(vec![("x".to_string(), 1.5.to_json())]);
        let v = encode("rdrp", body.clone());
        let (method, got) = decode(&v).unwrap();
        assert_eq!(method, "rdrp");
        assert_eq!(tinyjson::to_string(got), tinyjson::to_string(&body));
    }

    #[test]
    fn v2_envelope_roundtrips_and_declares_arms() {
        let body = Value::Obj(vec![("arms".to_string(), Value::Arr(vec![]))]);
        let v = encode_with_arms("tpm-sl", 4, body);
        let (method, _) = decode(&v).unwrap();
        assert_eq!(method, "tpm-sl");
        assert_eq!(artifact_n_arms(&v).unwrap(), 4);
        // A v1 envelope is implicitly binary.
        let v1 = encode("tpm-sl", Value::Obj(vec![]));
        assert_eq!(artifact_n_arms(&v1).unwrap(), 2);
    }

    #[test]
    fn v2_envelope_requires_a_sane_n_arms() {
        let mut v = encode_with_arms("rdrp", 3, Value::Obj(vec![]));
        {
            let Value::Obj(fields) = &mut v else {
                unreachable!()
            };
            fields[1].1 = 1u64.to_json(); // n_arms = 1: no treatment arm
        }
        assert!(matches!(artifact_n_arms(&v), Err(PersistError::Format(_))));
        {
            let Value::Obj(fields) = &mut v else {
                unreachable!()
            };
            fields.remove(1); // missing entirely
        }
        assert!(artifact_n_arms(&v).is_err());
    }

    #[test]
    fn rejects_future_format_version() {
        let mut v = encode("rdrp", Value::Null);
        let Value::Obj(fields) = &mut v else {
            unreachable!()
        };
        fields[0].1 = 99u64.to_json();
        let err = decode(&v).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err:?}");
        assert!(err.to_string().contains("format_version 99"), "{err}");
    }

    #[test]
    fn tampered_body_fails_the_checksum() {
        let mut v = encode("rdrp", Value::Obj(vec![("x".to_string(), 1.5.to_json())]));
        let Value::Obj(fields) = &mut v else {
            unreachable!()
        };
        // Field 2 is the body; swap in a different (still valid) payload.
        fields[2].1 = Value::Obj(vec![("x".to_string(), 2.5.to_json())]);
        let err = decode(&v).unwrap_err();
        assert!(matches!(err, PersistError::Checksum { .. }), "{err:?}");
    }

    #[test]
    fn pre_checksum_envelopes_still_decode() {
        let mut v = encode("rdrp", Value::Obj(vec![("x".to_string(), 1.5.to_json())]));
        let Value::Obj(fields) = &mut v else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "checksum");
        let (method, _) = decode(&v).unwrap();
        assert_eq!(method, "rdrp");
    }

    #[test]
    fn rejects_raw_model_json_without_envelope() {
        let bare = Value::Obj(vec![("weights".to_string(), Value::Arr(vec![]))]);
        assert!(matches!(decode(&bare), Err(PersistError::Format(_))));
    }

    #[test]
    fn decode_expecting_names_both_tags() {
        let v = encode("drp", Value::Obj(vec![]));
        let err = decode_expecting(&v, "\"rdrp\"", |t| t == "rdrp").unwrap_err();
        assert!(err.to_string().contains("drp"), "{err}");
        assert!(err.to_string().contains("rdrp"), "{err}");
    }
}
