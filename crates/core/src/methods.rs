//! The method registry: every paper method behind one object-safe trait.
//!
//! The experiment harness, the CLI, and the serving layer all need "a
//! fitted ROI ranker" without caring which of the twelve Table I/II
//! methods it is. [`RoiMethod`] is that interface; [`METHODS`] maps each
//! registry name (which doubles as the artifact tag of
//! [`crate::artifact`]) to a builder and a loader, so
//!
//! * `cli train --method <name>` constructs any method from its name,
//! * [`save_method`]/[`load_method`] round-trip any of them through the
//!   versioned envelope, and
//! * a serving registry can hot-swap between method families by loading
//!   whatever tag a file carries.
//!
//! Scoring through [`RoiMethod::scores`] is **deterministic**: methods
//! whose scoring consumes randomness (the MC-dropout sweeps) seed it
//! from [`crate::SCORING_SEED`] per call, so a loaded artifact scores
//! bitwise identically to the model that was saved — the property the
//! round-trip and golden-artifact tests pin down.

use crate::artifact;
use crate::bootstrap_uq::BootstrapDrp;
use crate::config::RdrpConfig;
use crate::drp::DrpModel;
use crate::error::PipelineError;
use crate::persist::PersistError;
use crate::rdrp::{Rdrp, SCORING_SEED};
use conformal::Interval;
use datasets::RctDataset;
use linalg::random::Prng;
use linalg::Matrix;
use nn::Workspace;
use obs::Obs;
use std::fmt;
use std::path::Path;
use tinyjson::{FromJson, JsonError, ToJson, Value};
use uplift::{DirectRank, FitError, NetConfig, RoiModel, Tpm};

/// One ROI-ranking method of the paper's evaluation, behind a uniform
/// fit/score/persist surface.
///
/// Object-safe on purpose: the harness holds `Box<dyn RoiMethod>`, the
/// serving layer `Arc<Box<dyn RoiMethod>>`. The contract mirrors
/// `serve`'s `BatchScorer`: [`RoiMethod::scores`] is a pure function of
/// the fitted state and `x` (MC sweeps re-seed from [`SCORING_SEED`]),
/// and [`RoiMethod::rowwise`] tells a batcher whether rows from
/// different requests may be coalesced.
pub trait RoiMethod: Send + Sync + fmt::Debug {
    /// Registry name, which is also the artifact tag (e.g. `"tpm-sl"`).
    fn method_name(&self) -> &'static str;

    /// Paper-style row label (e.g. `"TPM-SL"`, `"DRP w/ MC"`).
    fn label(&self) -> String;

    /// Fits the method. Methods without a calibration stage ignore
    /// `calibration`; rDRP runs Algorithm 4 on it.
    ///
    /// # Errors
    /// [`FitError`] as the underlying model raises it.
    fn fit(
        &mut self,
        train: &RctDataset,
        calibration: &RctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError>;

    /// Whether the method has been fitted (a loaded artifact of a fitted
    /// model counts).
    fn is_fitted(&self) -> bool;

    /// Feature dimension the fitted method consumes, `None` before
    /// fitting.
    fn n_features(&self) -> Option<usize>;

    /// Whether each row's score depends only on that row (MC-sweep
    /// methods consume RNG across the batch and must answer `false`).
    fn rowwise(&self) -> bool;

    /// Ranking scores for every row of `x`. Deterministic: equal inputs
    /// give bitwise-equal scores. `ws` is reusable forward scratch for
    /// the neural methods; others ignore it.
    ///
    /// # Panics
    /// Panics when unfitted (callers gate on [`RoiMethod::is_fitted`]).
    fn scores(&self, x: &Matrix, ws: &mut Workspace, obs: &Obs) -> Vec<f64>;

    /// [`RoiMethod::scores`] with method-owned scratch — the convenience
    /// entry point for one-shot callers.
    fn scores_fresh(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        let mut ws = Workspace::new();
        self.scores(x, &mut ws, obs)
    }

    /// Ranking scores through the columnar f32 kernel path, where the
    /// method has one (the rowwise-coalescible families: TPM, DR, DRP,
    /// Identity-form rDRP, the bootstrap ensemble). The default falls
    /// back to the f64 scalar path, so MC-sweep methods stay bitwise
    /// identical to [`RoiMethod::scores`].
    ///
    /// Block scores match scalar scores to f32 rounding, not bitwise —
    /// tree families are bitwise once inputs are rounded to f32, net
    /// families carry an absolute tolerance (DESIGN.md §11). Callers
    /// that persist or replay scores must stay on [`RoiMethod::scores`];
    /// this path is opt-in (`EngineConfig::block_kernels`).
    ///
    /// # Panics
    /// Panics when unfitted (callers gate on [`RoiMethod::is_fitted`]).
    fn scores_block(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        self.scores_fresh(x, obs)
    }

    /// Conformal prediction intervals, for the methods that calibrate
    /// them (rDRP); `None` for everything else.
    fn intervals(&self, _x: &Matrix) -> Option<Vec<Interval>> {
        None
    }

    /// Downcast to the calibrated rDRP model, when that is what this
    /// method wraps — the CLI uses it to print calibration diagnostics
    /// and degraded-mode warnings that only rDRP has.
    fn as_rdrp(&self) -> Option<&Rdrp> {
        None
    }

    /// A copy of this method with its conformal quantile replaced — the
    /// online-recalibration hot-swap path. `None` for methods without a
    /// conformal stage (they have nothing to recalibrate), when the
    /// method is unfitted, or when `qhat` is not a quantile (NaN or
    /// negative).
    fn with_qhat(&self, _qhat: f64, _n_calibration: usize) -> Option<Box<dyn RoiMethod>> {
        None
    }

    /// The artifact body (everything [`load_method`] needs to
    /// reconstruct this method, fitted state included).
    fn body_to_json(&self) -> Value;
}

/// Saves any method as a versioned artifact at `path`, through the
/// crash-safe [`crate::persist::atomic_write_artifact`] path (temp +
/// fsync + rename): an interrupted save leaves any previous artifact
/// intact.
///
/// # Errors
/// [`PersistError::Io`] when the file cannot be written.
pub fn save_method(method: &dyn RoiMethod, path: impl AsRef<Path>) -> Result<(), PersistError> {
    crate::persist::atomic_write_artifact(
        path,
        &artifact::render(method.method_name(), method.body_to_json()),
    )
}

/// Loads any artifact by its embedded method tag.
///
/// # Errors
/// [`PersistError::Io`]/[`PersistError::Serde`] for unreadable or
/// unparseable files, [`PersistError::Format`] for a valid JSON file
/// that is not an artifact or carries an unknown tag,
/// [`PersistError::Checksum`] for a stamped artifact whose body was
/// altered after it was written.
pub fn load_method(path: impl AsRef<Path>) -> Result<Box<dyn RoiMethod>, PersistError> {
    let v: Value = tinyjson::from_str(&crate::persist::read_artifact(path)?)?;
    if u64::from_json(v.fetch("format_version")) == Ok(artifact::KARM_FORMAT_VERSION) {
        let n_arms = artifact::artifact_n_arms(&v)?;
        return Err(PersistError::Format(format!(
            "artifact is a K-arm model ({n_arms} arms, format_version \
             {}); load it with `load_karm_method`",
            artifact::KARM_FORMAT_VERSION
        )));
    }
    let (tag, body) = artifact::decode(&v)?;
    let body = body.clone();
    let spec = spec(&tag).ok_or_else(|| {
        PersistError::Format(format!(
            "unknown method tag {tag:?} (known: {})",
            method_names().join(", ")
        ))
    })?;
    Ok((spec.load_body)(&body)?)
}

/// Hyperparameters a method builder draws from. One bundle for all
/// methods so the registry's builders stay `fn` pointers.
#[derive(Debug, Clone)]
pub struct MethodConfig {
    /// Network hyperparameters for the neural baselines (TPM nets, DR).
    pub net: NetConfig,
    /// DRP/rDRP hyperparameters; also supplies `mc_passes`/`std_floor`
    /// to the `*-mc` ablations and the bootstrap ensemble.
    pub rdrp: RdrpConfig,
    /// Ensemble size of `bootstrap-drp`.
    pub bootstrap_models: usize,
}

impl Default for MethodConfig {
    fn default() -> Self {
        MethodConfig {
            net: NetConfig::default(),
            rdrp: RdrpConfig::default(),
            bootstrap_models: 5,
        }
    }
}

/// One registry row: a name, its paper label, and the two constructors.
pub struct MethodSpec {
    /// Registry name == artifact tag.
    pub name: &'static str,
    /// Paper-style label.
    pub label: &'static str,
    /// Builds an unfitted instance from a config bundle.
    pub build: fn(&MethodConfig) -> Result<Box<dyn RoiMethod>, PipelineError>,
    /// Reconstructs an instance from an artifact body.
    pub load_body: fn(&Value) -> Result<Box<dyn RoiMethod>, JsonError>,
}

impl fmt::Debug for MethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MethodSpec")
            .field("name", &self.name)
            .field("label", &self.label)
            .finish()
    }
}

/// Every registered method, in the paper's Table I then Table II order.
pub const METHODS: [MethodSpec; 13] = [
    MethodSpec {
        name: "tpm-sl",
        label: "TPM-SL",
        build: |_| Ok(Box::new(TpmMethod::new("tpm-sl", Tpm::slearner()))),
        load_body: tpm_load_body,
    },
    MethodSpec {
        name: "tpm-xl",
        label: "TPM-XL",
        build: |_| Ok(Box::new(TpmMethod::new("tpm-xl", Tpm::xlearner()))),
        load_body: tpm_load_body,
    },
    MethodSpec {
        name: "tpm-cf",
        label: "TPM-CF",
        build: |_| Ok(Box::new(TpmMethod::new("tpm-cf", Tpm::causal_forest()))),
        load_body: tpm_load_body,
    },
    MethodSpec {
        name: "tpm-dragonnet",
        label: "TPM-DragonNet",
        build: |c| {
            Ok(Box::new(TpmMethod::new(
                "tpm-dragonnet",
                Tpm::dragonnet(c.net.clone()),
            )))
        },
        load_body: tpm_load_body,
    },
    MethodSpec {
        name: "tpm-tarnet",
        label: "TPM-TARNet",
        build: |c| {
            Ok(Box::new(TpmMethod::new(
                "tpm-tarnet",
                Tpm::tarnet(c.net.clone()),
            )))
        },
        load_body: tpm_load_body,
    },
    MethodSpec {
        name: "tpm-offsetnet",
        label: "TPM-OffsetNet",
        build: |c| {
            Ok(Box::new(TpmMethod::new(
                "tpm-offsetnet",
                Tpm::offsetnet(c.net.clone()),
            )))
        },
        load_body: tpm_load_body,
    },
    MethodSpec {
        name: "tpm-snet",
        label: "TPM-SNet",
        build: |c| {
            Ok(Box::new(TpmMethod::new(
                "tpm-snet",
                Tpm::snet(c.net.clone()),
            )))
        },
        load_body: tpm_load_body,
    },
    MethodSpec {
        name: "dr",
        label: "DR",
        build: |c| Ok(Box::new(DrMethod::unfitted(false, c))),
        load_body: |b| DrMethod::from_body(false, b),
    },
    MethodSpec {
        name: "dr-mc",
        label: "DR w/ MC",
        build: |c| Ok(Box::new(DrMethod::unfitted(true, c))),
        load_body: |b| DrMethod::from_body(true, b),
    },
    MethodSpec {
        name: "drp",
        label: "DRP",
        build: |c| Ok(Box::new(DrpMethod::unfitted(false, c))),
        load_body: |b| DrpMethod::from_body(false, b),
    },
    MethodSpec {
        name: "drp-mc",
        label: "DRP w/ MC",
        build: |c| Ok(Box::new(DrpMethod::unfitted(true, c))),
        load_body: |b| DrpMethod::from_body(true, b),
    },
    MethodSpec {
        name: "rdrp",
        label: "rDRP",
        build: |c| Ok(Box::new(RdrpMethod::unfitted(c)?)),
        load_body: |b| Ok(Box::new(RdrpMethod::new(Rdrp::from_json(b)?))),
    },
    MethodSpec {
        name: "bootstrap-drp",
        label: "BootstrapDRP",
        build: |c| Ok(Box::new(BootstrapDrpMethod::unfitted(c))),
        load_body: BootstrapDrpMethod::from_body,
    },
];

/// Shared loader for all seven `tpm-*` rows: the body carries the TPM
/// label, from which [`TpmMethod::from_body`] re-derives the tag.
fn tpm_load_body(body: &Value) -> Result<Box<dyn RoiMethod>, JsonError> {
    Ok(Box::new(TpmMethod::from_body(body)?))
}

/// Resolves a registry name to its spec.
pub fn spec(name: &str) -> Option<&'static MethodSpec> {
    METHODS.iter().find(|s| s.name == name)
}

/// All registry names, in table order.
pub fn method_names() -> Vec<&'static str> {
    METHODS.iter().map(|s| s.name).collect()
}

/// Builds an unfitted method by registry name.
///
/// # Errors
/// [`PipelineError::Config`] for an unknown name (the message lists
/// every valid one) or an invalid configuration.
pub fn build(name: &str, config: &MethodConfig) -> Result<Box<dyn RoiMethod>, PipelineError> {
    match spec(name) {
        Some(s) => (s.build)(config),
        None => Err(PipelineError::Config(format!(
            "unknown method {name:?}; valid methods: {}",
            method_names().join(", ")
        ))),
    }
}

// ---------------------------------------------------------------------
// Wrappers
// ---------------------------------------------------------------------

/// The seven `tpm-*` methods: a [`Tpm`] plus its registry tag.
pub struct TpmMethod {
    name: &'static str,
    model: Tpm,
}

impl fmt::Debug for TpmMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TpmMethod")
            .field("name", &self.name)
            .field("fitted", &self.model.n_features().is_some())
            .finish()
    }
}

impl TpmMethod {
    fn new(name: &'static str, model: Tpm) -> TpmMethod {
        TpmMethod { name, model }
    }

    /// Reconstructs a TPM method from an artifact body, re-deriving the
    /// static tag from the model's label.
    fn from_body(body: &Value) -> Result<TpmMethod, JsonError> {
        let model = Tpm::from_json(body)?;
        let name = tpm_tag(model.label())
            .ok_or_else(|| JsonError::msg(format!("unknown TPM label {:?}", model.label())))?;
        Ok(TpmMethod { name, model })
    }
}

/// Maps a [`Tpm`] label (`"SL"`, `"DragonNet"`, …) to its registry tag.
fn tpm_tag(label: &str) -> Option<&'static str> {
    match label {
        "SL" => Some("tpm-sl"),
        "XL" => Some("tpm-xl"),
        "CF" => Some("tpm-cf"),
        "DragonNet" => Some("tpm-dragonnet"),
        "TARNet" => Some("tpm-tarnet"),
        "OffsetNet" => Some("tpm-offsetnet"),
        "SNet" => Some("tpm-snet"),
        _ => None,
    }
}

impl RoiMethod for TpmMethod {
    fn method_name(&self) -> &'static str {
        self.name
    }

    fn label(&self) -> String {
        self.model.name()
    }

    fn fit(
        &mut self,
        train: &RctDataset,
        _calibration: &RctDataset,
        rng: &mut Prng,
        _obs: &Obs,
    ) -> Result<(), FitError> {
        self.model.fit(train, rng)
    }

    fn is_fitted(&self) -> bool {
        self.model.n_features().is_some()
    }

    fn n_features(&self) -> Option<usize> {
        self.model.n_features()
    }

    fn rowwise(&self) -> bool {
        true
    }

    fn scores(&self, x: &Matrix, _ws: &mut Workspace, _obs: &Obs) -> Vec<f64> {
        self.model.predict_roi(x)
    }

    fn scores_block(&self, x: &Matrix, _obs: &Obs) -> Vec<f64> {
        self.model.predict_roi_block(x)
    }

    fn body_to_json(&self) -> Value {
        self.model.to_json()
    }
}

/// `dr` and `dr-mc`: Direct Rank, optionally combined with its MC std.
#[derive(Debug)]
pub struct DrMethod {
    mc: bool,
    mc_passes: usize,
    model: DirectRank,
}

impl DrMethod {
    fn unfitted(mc: bool, config: &MethodConfig) -> DrMethod {
        DrMethod {
            mc,
            mc_passes: config.rdrp.mc_passes,
            model: DirectRank::new(config.net.clone()),
        }
    }

    fn from_body(mc: bool, body: &Value) -> Result<Box<dyn RoiMethod>, JsonError> {
        if mc {
            let (model, mc_passes, _floor) = artifact::mc_body_parts(body)?;
            Ok(Box::new(DrMethod {
                mc: true,
                mc_passes,
                model: DirectRank::from_json(model)?,
            }))
        } else {
            Ok(Box::new(DrMethod {
                mc: false,
                mc_passes: 0,
                model: DirectRank::from_json(body)?,
            }))
        }
    }
}

impl RoiMethod for DrMethod {
    fn method_name(&self) -> &'static str {
        if self.mc {
            "dr-mc"
        } else {
            "dr"
        }
    }

    fn label(&self) -> String {
        if self.mc {
            "DR w/ MC".to_string()
        } else {
            "DR".to_string()
        }
    }

    fn fit(
        &mut self,
        train: &RctDataset,
        _calibration: &RctDataset,
        rng: &mut Prng,
        _obs: &Obs,
    ) -> Result<(), FitError> {
        self.model.fit(train, rng)
    }

    fn is_fitted(&self) -> bool {
        self.model.n_features().is_some()
    }

    fn n_features(&self) -> Option<usize> {
        self.model.n_features()
    }

    fn rowwise(&self) -> bool {
        !self.mc
    }

    fn scores(&self, x: &Matrix, _ws: &mut Workspace, _obs: &Obs) -> Vec<f64> {
        if self.mc {
            // The Table II ablation: point estimate plus MC std as the
            // optimism term, on a fixed seed for determinism.
            let mut rng = Prng::seed_from_u64(SCORING_SEED);
            let stats = self.model.mc_scores(x, self.mc_passes, &mut rng);
            stats
                .mean
                .iter()
                .zip(&stats.std)
                .map(|(m, s)| m + s)
                .collect()
        } else {
            self.model.predict_roi(x)
        }
    }

    fn scores_block(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        if self.mc {
            // The MC sweep consumes RNG across the batch; keep it on the
            // scalar path so dr-mc stays bitwise-stable.
            self.scores_fresh(x, obs)
        } else {
            self.model.predict_roi_block(x)
        }
    }

    fn body_to_json(&self) -> Value {
        if self.mc {
            artifact::mc_body(self.model.to_json(), self.mc_passes, 0.0)
        } else {
            self.model.to_json()
        }
    }
}

/// `drp` and `drp-mc`: Direct ROI Prediction, optionally with MC std.
#[derive(Debug)]
pub struct DrpMethod {
    mc: bool,
    mc_passes: usize,
    std_floor: f64,
    model: DrpModel,
}

impl DrpMethod {
    fn unfitted(mc: bool, config: &MethodConfig) -> DrpMethod {
        DrpMethod {
            mc,
            mc_passes: config.rdrp.mc_passes,
            std_floor: config.rdrp.std_floor,
            model: DrpModel::new(config.rdrp.drp.clone()),
        }
    }

    fn from_body(mc: bool, body: &Value) -> Result<Box<dyn RoiMethod>, JsonError> {
        if mc {
            let (model, mc_passes, std_floor) = artifact::mc_body_parts(body)?;
            Ok(Box::new(DrpMethod {
                mc: true,
                mc_passes,
                std_floor,
                model: DrpModel::from_json(model)?,
            }))
        } else {
            Ok(Box::new(DrpMethod {
                mc: false,
                mc_passes: 0,
                std_floor: 0.0,
                model: DrpModel::from_json(body)?,
            }))
        }
    }
}

impl RoiMethod for DrpMethod {
    fn method_name(&self) -> &'static str {
        if self.mc {
            "drp-mc"
        } else {
            "drp"
        }
    }

    fn label(&self) -> String {
        if self.mc {
            "DRP w/ MC".to_string()
        } else {
            "DRP".to_string()
        }
    }

    fn fit(
        &mut self,
        train: &RctDataset,
        _calibration: &RctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError> {
        self.model.fit(train, rng, obs)
    }

    fn is_fitted(&self) -> bool {
        self.model.n_features().is_some()
    }

    fn n_features(&self) -> Option<usize> {
        self.model.n_features()
    }

    fn rowwise(&self) -> bool {
        !self.mc
    }

    fn scores(&self, x: &Matrix, ws: &mut Workspace, obs: &Obs) -> Vec<f64> {
        if self.mc {
            let mut rng = Prng::seed_from_u64(SCORING_SEED);
            let stats = self
                .model
                .mc_roi(x, self.mc_passes, self.std_floor, &mut rng, obs);
            stats
                .mean
                .iter()
                .zip(&stats.std)
                .map(|(m, s)| m + s)
                .collect()
        } else {
            self.model.predict_roi_with(x, ws, obs)
        }
    }

    fn scores_block(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        if self.mc {
            // The MC sweep consumes RNG across the batch; keep it on the
            // scalar path so drp-mc stays bitwise-stable.
            self.scores_fresh(x, obs)
        } else {
            self.model.predict_roi_block(x, obs)
        }
    }

    fn body_to_json(&self) -> Value {
        if self.mc {
            artifact::mc_body(self.model.to_json(), self.mc_passes, self.std_floor)
        } else {
            self.model.to_json()
        }
    }
}

/// `rdrp`: the calibrated robust DRP model (Algorithm 4).
#[derive(Debug)]
pub struct RdrpMethod {
    model: Rdrp,
}

impl RdrpMethod {
    /// Wraps an existing (possibly fitted) rDRP model.
    pub fn new(model: Rdrp) -> RdrpMethod {
        RdrpMethod { model }
    }

    fn unfitted(config: &MethodConfig) -> Result<RdrpMethod, PipelineError> {
        Ok(RdrpMethod {
            model: Rdrp::new(config.rdrp.clone())?,
        })
    }
}

impl RoiMethod for RdrpMethod {
    fn method_name(&self) -> &'static str {
        "rdrp"
    }

    fn label(&self) -> String {
        "rDRP".to_string()
    }

    fn fit(
        &mut self,
        train: &RctDataset,
        calibration: &RctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError> {
        self.model
            .fit_with_calibration(train, calibration, rng, obs)
    }

    fn is_fitted(&self) -> bool {
        self.model.n_features().is_some()
    }

    fn n_features(&self) -> Option<usize> {
        self.model.n_features()
    }

    fn rowwise(&self) -> bool {
        self.model.selected_form() == Some(crate::calibrate::CalibrationForm::Identity)
    }

    fn scores(&self, x: &Matrix, ws: &mut Workspace, obs: &Obs) -> Vec<f64> {
        let mut rng = Prng::seed_from_u64(SCORING_SEED);
        self.model.predict_scores_with(x, &mut rng, ws, obs)
    }

    fn scores_block(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        if self.rowwise() {
            // Identity form: calibrated scores ARE the DRP point
            // estimates, which have a block path.
            self.model.drp().predict_roi_block(x, obs)
        } else {
            // Non-Identity forms need the MC-dropout sweep; keep it on
            // the scalar path so scoring stays bitwise-stable.
            self.scores_fresh(x, obs)
        }
    }

    fn intervals(&self, x: &Matrix) -> Option<Vec<Interval>> {
        let mut rng = Prng::seed_from_u64(SCORING_SEED);
        Some(self.model.predict_intervals(x, &mut rng))
    }

    fn as_rdrp(&self) -> Option<&Rdrp> {
        Some(&self.model)
    }

    fn with_qhat(&self, qhat: f64, n_calibration: usize) -> Option<Box<dyn RoiMethod>> {
        let swapped = self.model.with_qhat(qhat, n_calibration)?;
        Some(Box::new(RdrpMethod::new(swapped)))
    }

    fn body_to_json(&self) -> Value {
        self.model.to_json()
    }
}

/// `bootstrap-drp`: the ensemble-uncertainty baseline rDRP avoids.
#[derive(Debug)]
pub struct BootstrapDrpMethod {
    std_floor: f64,
    model: BootstrapDrp,
}

impl BootstrapDrpMethod {
    fn unfitted(config: &MethodConfig) -> BootstrapDrpMethod {
        BootstrapDrpMethod {
            std_floor: config.rdrp.std_floor,
            model: BootstrapDrp::new(config.rdrp.drp.clone(), config.bootstrap_models.max(1)),
        }
    }

    fn from_body(body: &Value) -> Result<Box<dyn RoiMethod>, JsonError> {
        Ok(Box::new(BootstrapDrpMethod {
            std_floor: f64::from_json(body.fetch("std_floor"))?,
            model: BootstrapDrp::from_json(body.fetch("model"))?,
        }))
    }
}

impl RoiMethod for BootstrapDrpMethod {
    fn method_name(&self) -> &'static str {
        "bootstrap-drp"
    }

    fn label(&self) -> String {
        "BootstrapDRP".to_string()
    }

    fn fit(
        &mut self,
        train: &RctDataset,
        _calibration: &RctDataset,
        rng: &mut Prng,
        _obs: &Obs,
    ) -> Result<(), FitError> {
        self.model.fit(train, rng)
    }

    fn is_fitted(&self) -> bool {
        !self.model.is_empty()
    }

    fn n_features(&self) -> Option<usize> {
        self.model.n_features()
    }

    fn rowwise(&self) -> bool {
        // Ensemble mean/std are per-row functions of deterministic
        // member predictions — no cross-row randomness.
        true
    }

    fn scores(&self, x: &Matrix, _ws: &mut Workspace, _obs: &Obs) -> Vec<f64> {
        let stats = self.model.ensemble_roi(x, self.std_floor);
        stats
            .mean
            .iter()
            .zip(&stats.std)
            .map(|(m, s)| m + s)
            .collect()
    }

    fn scores_block(&self, x: &Matrix, _obs: &Obs) -> Vec<f64> {
        let stats = self.model.ensemble_roi_block(x, self.std_floor);
        stats
            .mean
            .iter()
            .zip(&stats.std)
            .map(|(m, s)| m + s)
            .collect()
    }

    fn body_to_json(&self) -> Value {
        Value::Obj(vec![
            ("model".to_string(), self.model.to_json()),
            ("std_floor".to_string(), self.std_floor.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;

    #[test]
    fn registry_names_are_unique_and_resolve() {
        let names = method_names();
        assert_eq!(names.len(), 13);
        for name in &names {
            let s = spec(name).unwrap();
            assert_eq!(&s.name, name);
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate registry names");
    }

    #[test]
    fn unknown_method_error_lists_valid_names() {
        let err = build("gradient-boosted-hopes", &MethodConfig::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("gradient-boosted-hopes"), "{msg}");
        for name in method_names() {
            assert!(msg.contains(name), "missing {name} in {msg}");
        }
    }

    #[test]
    fn every_method_builds_unfitted() {
        for s in &METHODS {
            let m = build(s.name, &MethodConfig::default()).unwrap();
            assert_eq!(m.method_name(), s.name);
            assert_eq!(m.label(), s.label);
            assert!(!m.is_fitted(), "{} claims fitted before fit", s.name);
            assert!(m.n_features().is_none());
        }
    }

    #[test]
    fn invalid_rdrp_config_is_a_typed_build_error() {
        let mut config = MethodConfig::default();
        config.rdrp.alpha = 7.5;
        let err = build("rdrp", &config).unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err:?}");
    }

    #[test]
    fn fit_and_score_through_the_trait_object() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(1500, Population::Base, &mut rng);
        let cal = gen.sample(600, Population::Base, &mut rng);
        let test = gen.sample(100, Population::Base, &mut rng);
        let mut config = MethodConfig::default();
        config.rdrp.drp.epochs = 3;
        config.rdrp.mc_passes = 5;
        let mut m = build("drp", &config).unwrap();
        m.fit(&train, &cal, &mut rng, &Obs::disabled()).unwrap();
        assert!(m.is_fitted());
        assert_eq!(m.n_features(), Some(test.x.cols()));
        let scores = m.scores_fresh(&test.x, &Obs::disabled());
        assert_eq!(scores.len(), 100);
        // Determinism: a second call is bitwise identical.
        assert_eq!(scores, m.scores_fresh(&test.x, &Obs::disabled()));
    }
}
