//! The multiple-choice knapsack (MCKP) allocator.
//!
//! The K-arm C-BTAP decision is an MCKP: each individual receives at most
//! one of `K − 1` treatment arms (or control), each `(individual, arm)`
//! option has a score (expected value) and a cost, and one budget caps
//! total spend. [`mckp_allocate`] implements the classic LP-relaxation
//! greedy:
//!
//! 1. **Dominance reduction** per individual: an option that costs no
//!    less and scores no more than another can never be part of a greedy
//!    solution and is dropped.
//! 2. **Efficiency frontier** per individual: the surviving options form
//!    an upper concave hull over (cost, score), so the incremental steps
//!    between consecutive frontier points have decreasing incremental
//!    efficiency `Δscore/Δcost`.
//! 3. **Global greedy walk**: all frontier steps, across individuals,
//!    sorted by incremental efficiency; a step `a → b` applies only when
//!    the individual currently sits at `a` and `Δcost` fits the remaining
//!    budget. Zero-`Δcost` steps (a free arm that scores better than
//!    control) have infinite efficiency and apply first.
//!
//! The walk never exceeds the budget (the property the
//! [`MultiAllocation::spent`] invariant and the integration property test
//! pin), runs in `O(nK log(nK))`, and is deterministic: ties in
//! efficiency resolve by generation order (individual-major, then frontier
//! order), which a stable sort preserves.
//!
//! The walk alone has no constant-factor guarantee — a cheap efficient
//! step can lock out one expensive high-value option — so the allocator
//! returns the better of the walk and the single best affordable option,
//! which restores the classic 1/2-approximation bound
//! (`greedy + best_single ≥ LP optimum ≥ ILP optimum`).
//!
//! Unlike the pre-refactor pair-greedy (see [`crate::multi`]'s deprecated
//! shim), zero-cost arms are legal here — they dominate control and are
//! assigned before any budget is spent.

use crate::error::PipelineError;

/// An assignment of at most one treatment arm per individual.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAllocation {
    /// `Some(k)` = individual receives arm `k` (1-based); `None` = control.
    pub assigned: Vec<Option<u8>>,
    /// Total expected incremental cost.
    pub spent: f64,
    /// Number of treated individuals.
    pub n_treated: usize,
}

/// One point on an individual's efficiency frontier.
#[derive(Debug, Clone, Copy)]
struct FrontierPoint {
    /// 0 = control, `k` = arm `k`.
    level: u8,
    cost: f64,
    score: f64,
}

/// One greedy step: move `individual` from `from_level` to `to_level`.
#[derive(Debug, Clone, Copy)]
struct Step {
    individual: usize,
    from_level: u8,
    to_level: u8,
    dcost: f64,
    efficiency: f64,
}

/// Incremental efficiency of moving between two frontier points; a free
/// improvement is infinitely efficient.
fn slope(a: &FrontierPoint, b: &FrontierPoint) -> f64 {
    let dc = b.cost - a.cost;
    if dc > 0.0 {
        (b.score - a.score) / dc
    } else {
        f64::INFINITY
    }
}

/// Builds individual `i`'s efficiency frontier (control first) and
/// appends its steps to `steps`.
fn frontier_steps(i: usize, scores: &[Vec<f64>], costs: &[Vec<f64>], steps: &mut Vec<Step>) {
    // All options, sorted by (cost asc, score desc, arm asc): the control
    // level is the fixed frontier base, so it stays out of the sort.
    let mut options: Vec<FrontierPoint> = (0..scores.len())
        .map(|k| FrontierPoint {
            level: k as u8 + 1,
            cost: costs[k][i],
            score: scores[k][i],
        })
        .collect();
    options.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(b.score.total_cmp(&a.score))
            .then(a.level.cmp(&b.level))
    });
    // Dominance sweep + upper concave hull in one pass over the sorted
    // options. The base (control: cost 0, score 0) is hull[0] and is
    // never popped, so the walk's starting level is always on the hull.
    let mut hull: Vec<FrontierPoint> = vec![FrontierPoint {
        level: 0,
        cost: 0.0,
        score: 0.0,
    }];
    for opt in options {
        if opt.score <= hull[hull.len() - 1].score {
            continue; // dominated: costs no less, scores no more
        }
        while hull.len() >= 2
            && slope(&hull[hull.len() - 2], &hull[hull.len() - 1])
                <= slope(&hull[hull.len() - 1], &opt)
        {
            hull.pop();
        }
        hull.push(opt);
    }
    for pair in hull.windows(2) {
        steps.push(Step {
            individual: i,
            from_level: pair[0].level,
            to_level: pair[1].level,
            dcost: pair[1].cost - pair[0].cost,
            efficiency: slope(&pair[0], &pair[1]),
        });
    }
}

/// Validates the score/cost matrices and the budget.
fn check_inputs(
    scores: &[Vec<f64>],
    costs: &[Vec<f64>],
    budget: f64,
) -> Result<usize, PipelineError> {
    if scores.is_empty() {
        return Err(PipelineError::Data("mckp_allocate: no arms".to_string()));
    }
    if scores.len() != costs.len() {
        return Err(PipelineError::Data(format!(
            "mckp_allocate: {} score arms but {} cost arms",
            scores.len(),
            costs.len()
        )));
    }
    let n = scores[0].len();
    for (k, (s, c)) in scores.iter().zip(costs).enumerate() {
        if s.len() != n {
            return Err(PipelineError::Data(format!("ragged scores at arm {k}")));
        }
        if c.len() != n {
            return Err(PipelineError::Data(format!("ragged costs at arm {k}")));
        }
        if !s.iter().all(|v| v.is_finite()) {
            return Err(PipelineError::Data(format!(
                "arm {k}: scores must be finite"
            )));
        }
        if !c.iter().all(|&v| v.is_finite() && v >= 0.0) {
            return Err(PipelineError::Data(format!(
                "arm {k}: costs must be finite and non-negative"
            )));
        }
    }
    if budget.is_nan() || budget < 0.0 {
        return Err(PipelineError::Data(format!(
            "budget {budget} must be non-negative"
        )));
    }
    Ok(n)
}

/// Solves the K-arm budgeted assignment greedily (see the module docs for
/// the algorithm). `scores[k][i]` and `costs[k][i]` are arm `k+1`'s score
/// and expected incremental cost for individual `i`; arm indices in the
/// result are 1-based, `None` meaning control.
///
/// Guarantees: `spent <= budget` always; each individual receives at most
/// one arm; zero-cost arms may be assigned even at budget 0.
///
/// # Errors
/// [`PipelineError::Data`] on ragged inputs, non-finite scores, negative
/// or non-finite costs, or a budget that is negative or NaN.
pub fn mckp_allocate(
    scores: &[Vec<f64>],
    costs: &[Vec<f64>],
    budget: f64,
) -> Result<MultiAllocation, PipelineError> {
    let n = check_inputs(scores, costs, budget)?;
    let mut steps = Vec::with_capacity(n * scores.len());
    for i in 0..n {
        frontier_steps(i, scores, costs, &mut steps);
    }
    // Stable sort: equal efficiencies keep generation order
    // (individual-major, frontier order), so the walk is deterministic.
    steps.sort_by(|a, b| b.efficiency.total_cmp(&a.efficiency));
    let mut level = vec![0u8; n];
    let mut spent = 0.0;
    for step in &steps {
        if level[step.individual] != step.from_level {
            continue; // an earlier step for this individual was skipped
        }
        if spent + step.dcost > budget {
            continue; // does not fit; cheaper steps may still apply
        }
        level[step.individual] = step.to_level;
        spent += step.dcost;
    }
    // 1/2-approximation fallback: when the single best affordable option
    // beats everything the walk captured, take it instead. Strict `>`
    // keeps ties on the walk's side, so the result stays deterministic.
    let walk_value: f64 = level
        .iter()
        .enumerate()
        .filter(|(_, &l)| l != 0)
        .map(|(i, &l)| scores[usize::from(l) - 1][i])
        .sum();
    let mut best_single: Option<(usize, u8)> = None;
    let mut best_single_score = 0.0f64;
    for (k, (s_row, c_row)) in scores.iter().zip(costs).enumerate() {
        for i in 0..n {
            if c_row[i] <= budget && s_row[i] > best_single_score {
                best_single = Some((i, k as u8 + 1));
                best_single_score = s_row[i];
            }
        }
    }
    if let Some((i, k)) = best_single {
        if best_single_score > walk_value {
            level.iter_mut().for_each(|l| *l = 0);
            level[i] = k;
            spent = costs[usize::from(k) - 1][i];
        }
    }
    let n_treated = level.iter().filter(|&&l| l != 0).count();
    Ok(MultiAllocation {
        assigned: level.into_iter().map(|l| (l != 0).then_some(l)).collect(),
        spent,
        n_treated,
    })
}

/// Expected value captured by a multi-arm allocation under per-arm value
/// matrix `values[k][i]` (arm `k+1`'s value for individual `i`) — the
/// objective the allocator maximizes, and the bandit loop's regret unit.
pub fn multi_allocation_value(allocation: &MultiAllocation, values: &[Vec<f64>]) -> f64 {
    allocation
        .assigned
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|k| values[(k - 1) as usize][i]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::random::Prng;

    /// 3 users × 3 arms with a hand-verified optimum: exhaustive search
    /// over all 4³ assignments under budget 5 gives value 2.4 (user 0 →
    /// arm 2, user 1 → arm 2, user 2 → arm 1), and the greedy walk
    /// reaches exactly that assignment.
    fn known_optimum_instance() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let scores = vec![
            vec![0.9, 0.4, 0.3],  // arm 1
            vec![1.2, 0.9, 0.35], // arm 2
            vec![1.3, 1.0, 0.9],  // arm 3
        ];
        let costs = vec![vec![1.0; 3], vec![2.0; 3], vec![4.0; 3]];
        (scores, costs)
    }

    /// Brute-force MCKP optimum for tiny instances.
    fn brute_force(scores: &[Vec<f64>], costs: &[Vec<f64>], budget: f64) -> f64 {
        let n = scores[0].len();
        let arms = scores.len();
        let mut best = 0.0f64;
        let mut choice = vec![0usize; n]; // 0 = control, k = arm k
        loop {
            let (mut value, mut cost) = (0.0, 0.0);
            for (i, &c) in choice.iter().enumerate() {
                if c > 0 {
                    value += scores[c - 1][i];
                    cost += costs[c - 1][i];
                }
            }
            if cost <= budget {
                best = best.max(value);
            }
            // Odometer over the choice vector.
            let mut pos = 0;
            loop {
                if pos == n {
                    return best;
                }
                choice[pos] += 1;
                if choice[pos] <= arms {
                    break;
                }
                choice[pos] = 0;
                pos += 1;
            }
        }
    }

    #[test]
    fn hand_computed_three_by_three_reaches_the_optimum() {
        let (scores, costs) = known_optimum_instance();
        let alloc = mckp_allocate(&scores, &costs, 5.0).unwrap();
        assert_eq!(alloc.assigned, vec![Some(2), Some(2), Some(1)]);
        assert_eq!(alloc.spent, 5.0);
        assert_eq!(alloc.n_treated, 3);
        let value = multi_allocation_value(&alloc, &scores);
        assert!((value - 2.4).abs() < 1e-12);
        assert_eq!(value, brute_force(&scores, &costs, 5.0));
    }

    #[test]
    fn budget_boundary_is_exact() {
        let (scores, costs) = known_optimum_instance();
        // Exactly at the boundary the last 1.0-cost step still applies ...
        let at = mckp_allocate(&scores, &costs, 5.0).unwrap();
        assert_eq!(at.spent, 5.0);
        // ... a hair below it does not, and nothing overshoots. The
        // exact assignment depends on float tie-breaks between two
        // equal-value solutions, so pin spend and value, not arms.
        let below = mckp_allocate(&scores, &costs, 5.0 - 1e-9).unwrap();
        assert!(below.spent <= 5.0 - 1e-9);
        assert_eq!(below.spent, 4.0);
        let value = multi_allocation_value(&below, &scores);
        assert!((value - brute_force(&scores, &costs, 5.0 - 1e-9)).abs() < 1e-12);
        assert!((value - 2.1).abs() < 1e-12);
        // Zero budget, positive costs: nobody is treated.
        let zero = mckp_allocate(&scores, &costs, 0.0).unwrap();
        assert_eq!(zero.n_treated, 0);
        assert_eq!(zero.spent, 0.0);
    }

    #[test]
    fn zero_cost_arms_are_assigned_even_at_zero_budget() {
        // A free arm that beats control dominates it on the frontier.
        let scores = vec![vec![0.5, 0.2], vec![0.9, 0.1]];
        let costs = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let alloc = mckp_allocate(&scores, &costs, 0.0).unwrap();
        assert_eq!(alloc.assigned, vec![Some(1), Some(1)]);
        assert_eq!(alloc.spent, 0.0);
        // With budget, the walk upgrades past the free arm where the
        // paid arm is worth the step.
        let paid = mckp_allocate(&scores, &costs, 1.0).unwrap();
        assert_eq!(paid.assigned, vec![Some(2), Some(1)]);
        assert_eq!(paid.spent, 1.0);
    }

    #[test]
    fn dominated_arms_are_never_assigned() {
        // Arm 2 costs more and scores less than arm 1 for everyone.
        let scores = vec![vec![0.9, 0.8], vec![0.5, 0.4]];
        let costs = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let alloc = mckp_allocate(&scores, &costs, 100.0).unwrap();
        assert_eq!(alloc.assigned, vec![Some(1), Some(1)]);
    }

    #[test]
    fn spend_never_exceeds_budget_property() {
        // Random instances across arm counts, sizes, and budgets.
        let mut rng = Prng::seed_from_u64(0xA110C);
        for trial in 0..200 {
            let arms = 1 + (trial % 5);
            let n = 1 + (trial % 37);
            let scores: Vec<Vec<f64>> = (0..arms)
                .map(|_| (0..n).map(|_| rng.uniform() * 2.0 - 0.5).collect())
                .collect();
            let costs: Vec<Vec<f64>> = (0..arms)
                .map(|_| {
                    (0..n)
                        .map(|_| {
                            if rng.bernoulli(0.1) {
                                0.0
                            } else {
                                rng.uniform() * 3.0
                            }
                        })
                        .collect()
                })
                .collect();
            let budget = rng.uniform() * n as f64;
            let alloc = mckp_allocate(&scores, &costs, budget).unwrap();
            assert!(
                alloc.spent <= budget + 1e-9,
                "trial {trial}: spent {} > budget {budget}",
                alloc.spent
            );
            // Spend equals the sum of assigned costs.
            let recomputed: f64 = alloc
                .assigned
                .iter()
                .enumerate()
                .filter_map(|(i, a)| a.map(|k| costs[(k - 1) as usize][i]))
                .sum();
            assert!((alloc.spent - recomputed).abs() < 1e-9);
            assert_eq!(
                alloc.n_treated,
                alloc.assigned.iter().filter(|a| a.is_some()).count()
            );
        }
    }

    #[test]
    fn greedy_matches_brute_force_on_small_instances() {
        // The LP greedy plus the best-single-option fallback carries a
        // 1/2-approximation guarantee; on small instances it usually
        // lands on the optimum outright.
        let mut rng = Prng::seed_from_u64(7);
        let mut exact = 0;
        for trial in 0..50 {
            let arms = 2 + (trial % 2);
            let n = 3;
            let scores: Vec<Vec<f64>> = (0..arms)
                .map(|_| (0..n).map(|_| rng.uniform()).collect())
                .collect();
            let costs: Vec<Vec<f64>> = (0..arms)
                .map(|_| (0..n).map(|_| 0.25 + rng.uniform()).collect())
                .collect();
            let budget = 1.0 + rng.uniform() * 2.0;
            let alloc = mckp_allocate(&scores, &costs, budget).unwrap();
            let greedy = multi_allocation_value(&alloc, &scores);
            let best = brute_force(&scores, &costs, budget);
            assert!(
                greedy >= 0.5 * best - 1e-12,
                "trial {trial}: greedy {greedy} vs optimum {best}"
            );
            if (greedy - best).abs() < 1e-9 {
                exact += 1;
            }
        }
        assert!(exact >= 25, "only {exact}/50 trials reached the optimum");
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let scores = vec![vec![0.5, 0.5]];
        let costs = vec![vec![1.0, 1.0]];
        assert!(matches!(
            mckp_allocate(&[], &[], 1.0),
            Err(PipelineError::Data(_))
        ));
        assert!(mckp_allocate(&scores, &[vec![1.0]], 1.0).is_err());
        assert!(mckp_allocate(&scores, &[vec![-1.0, 1.0]], 1.0).is_err());
        assert!(mckp_allocate(&scores, &[vec![f64::NAN, 1.0]], 1.0).is_err());
        assert!(mckp_allocate(&[vec![f64::NAN, 0.5]], &costs, 1.0).is_err());
        assert!(mckp_allocate(&scores, &costs, -1.0).is_err());
        assert!(mckp_allocate(&scores, &costs, f64::NAN).is_err());
    }
}
