//! Multi-treatment rDRP via Divide and Conquer (paper §VI).
//!
//! The paper: "Divide and Conquer method can be adopted for multiple
//! treatment, which decomposes the multiple treatment problem into
//! several binary treatment problems. Then each binary treatment problem
//! can use the rDRP method." This module implements exactly that, plus
//! the multiple-choice knapsack greedy that spends one budget across
//! arms (each individual receives at most one treatment).

use crate::config::RdrpConfig;
use crate::error::PipelineError;
use crate::rdrp::Rdrp;
use datasets::multi::MultiRctDataset;
use linalg::random::Prng;
use linalg::Matrix;
use obs::Obs;
use uplift::FitError;

/// One rDRP per treatment arm, trained on that arm's binarized RCT.
#[derive(Debug, Clone)]
pub struct DivideAndConquerRdrp {
    models: Vec<Rdrp>,
    n_levels: u8,
}

impl DivideAndConquerRdrp {
    /// Creates `n_levels` unfitted rDRP models sharing one configuration.
    ///
    /// # Errors
    /// Returns [`PipelineError::Config`] when `n_levels` is 0 or the
    /// configuration is invalid.
    pub fn new(config: RdrpConfig, n_levels: u8) -> Result<Self, PipelineError> {
        if n_levels == 0 {
            return Err(PipelineError::Config(
                "need at least one treatment arm".to_string(),
            ));
        }
        let models = (0..n_levels)
            .map(|_| Rdrp::new(config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DivideAndConquerRdrp { models, n_levels })
    }

    /// Number of treatment arms.
    pub fn n_levels(&self) -> u8 {
        self.n_levels
    }

    /// Fits each arm's rDRP on the binarized train/calibration pair.
    ///
    /// # Errors
    /// Returns [`FitError::InvalidData`] when the datasets have a
    /// different number of arms than this model, and propagates any
    /// per-arm fitting failure.
    pub fn fit(
        &mut self,
        train: &MultiRctDataset,
        calibration: &MultiRctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError> {
        if train.n_levels != self.n_levels {
            return Err(FitError::InvalidData(format!(
                "train arm-count mismatch: {} vs {}",
                train.n_levels, self.n_levels
            )));
        }
        if calibration.n_levels != self.n_levels {
            return Err(FitError::InvalidData(format!(
                "calibration arm-count mismatch: {} vs {}",
                calibration.n_levels, self.n_levels
            )));
        }
        for k in 1..=self.n_levels {
            let bt = train.to_binary(k);
            let bc = calibration.to_binary(k);
            self.models[(k - 1) as usize].fit_with_calibration(&bt, &bc, rng, obs)?;
        }
        Ok(())
    }

    /// Per-arm ranking scores for every row of `x`:
    /// `scores[k][i]` is arm `k+1`'s score for individual `i`.
    ///
    /// # Panics
    /// Panics before [`DivideAndConquerRdrp::fit`].
    pub fn predict_scores(&self, x: &Matrix, rng: &mut Prng, obs: &Obs) -> Vec<Vec<f64>> {
        self.models
            .iter()
            .map(|m| m.predict_scores(x, rng, obs))
            .collect()
    }

    /// Access to an individual arm's model (1-based arm index).
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn arm(&self, k: u8) -> &Rdrp {
        assert!(k >= 1 && k <= self.n_levels, "arm {k} out of range");
        &self.models[(k - 1) as usize]
    }

    /// Cross-arm **comparable** scores for the multiple-choice allocator.
    ///
    /// Each arm's calibrated rDRP score is only rank-valid *within* that
    /// arm (different arms may select different Eq. 5 forms with very
    /// different magnitudes — e.g. `roi + r̂q̂` vs raw `roi`). Comparing
    /// raw calibrated scores across arms would let one arm's scale
    /// monopolize the budget. This method quantile-matches: within each
    /// arm, individuals are ordered by the calibrated score but *valued*
    /// by the arm's own sorted DRP point-ROI estimates, putting every arm
    /// on the common (0, 1) ROI scale while preserving rDRP's ranking.
    ///
    /// # Panics
    /// Panics before [`DivideAndConquerRdrp::fit`].
    pub fn predict_comparable_scores(
        &self,
        x: &Matrix,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Vec<Vec<f64>> {
        use linalg::vector::argsort_desc;
        self.models
            .iter()
            .map(|m| {
                let calibrated = m.predict_scores(x, rng, obs);
                let mut roi_values = m.drp().predict_roi(x, obs);
                roi_values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let order = argsort_desc(&calibrated);
                let mut out = vec![0.0; calibrated.len()];
                for (rank, &i) in order.iter().enumerate() {
                    out[i] = roi_values[rank];
                }
                out
            })
            .collect()
    }
}

pub use crate::mckp::MultiAllocation;

/// Budgeted K-arm assignment. Renamed: this entry point used to implement
/// a pair-greedy heuristic (rank all `(individual, arm)` pairs by raw
/// score); it now delegates to [`crate::mckp::mckp_allocate`], the true
/// multiple-choice-knapsack greedy over per-individual efficiency
/// frontiers. Call `mckp_allocate` directly — the semantics differ from
/// the old pair-greedy (incremental efficiency, not raw score, drives the
/// walk, and zero-cost arms are legal).
///
/// # Errors
/// See [`crate::mckp::mckp_allocate`].
#[deprecated(note = "renamed to `mckp_allocate`; the allocator is now a true MCKP greedy")]
pub fn greedy_allocate_multi(
    scores: &[Vec<f64>],
    costs: &[Vec<f64>],
    budget: f64,
) -> Result<MultiAllocation, PipelineError> {
    crate::mckp::mckp_allocate(scores, costs, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DrpConfig;
    use datasets::generator::Population;
    use datasets::multi::MultiCouponGenerator;

    #[test]
    fn allocator_prefers_efficient_steps_and_respects_budget() {
        // Two arms, three individuals. Under the MCKP greedy, individual
        // 1's only frontier step is 0 → arm 2 at efficiency 0.7/2 = 0.35,
        // which loses to both cost-1 steps (0.9 and 0.5) and then no
        // longer fits: spending 2 on 0.7 is worse than 1 on 0.5.
        let scores = vec![vec![0.9, 0.1, 0.5], vec![0.8, 0.7, 0.2]];
        let costs = vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0]];
        let alloc = crate::mckp::mckp_allocate(&scores, &costs, 3.0).unwrap();
        assert_eq!(alloc.assigned, vec![Some(1), None, Some(1)]);
        assert_eq!(alloc.spent, 2.0);
        assert_eq!(alloc.n_treated, 2);
    }

    #[test]
    fn skip_rule_fills_budget_past_expensive_pairs() {
        let scores = vec![vec![0.9, 0.5]];
        let costs = vec![vec![10.0, 1.0]];
        // The best-scoring step does not fit; the next one does.
        let alloc = crate::mckp::mckp_allocate(&scores, &costs, 1.5).unwrap();
        assert_eq!(alloc.assigned[0], None);
        assert_eq!(alloc.assigned[1], Some(1));
    }

    #[test]
    fn each_individual_gets_at_most_one_arm() {
        let scores = vec![vec![0.9; 5], vec![0.8; 5], vec![0.7; 5]];
        let costs = vec![vec![0.1; 5]; 3];
        let alloc = crate::mckp::mckp_allocate(&scores, &costs, 100.0).unwrap();
        assert_eq!(alloc.n_treated, 5);
        assert!(alloc.assigned.iter().all(|a| a.is_some()));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_delegates_to_mckp() {
        let scores = vec![vec![0.9, 0.1, 0.5], vec![0.8, 0.7, 0.2]];
        let costs = vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0]];
        let shim = greedy_allocate_multi(&scores, &costs, 3.0).unwrap();
        let direct = crate::mckp::mckp_allocate(&scores, &costs, 3.0).unwrap();
        assert_eq!(shim, direct);
    }

    #[test]
    fn divide_and_conquer_end_to_end() {
        let gen = MultiCouponGenerator::new(2);
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(6000, Population::Base, &mut rng);
        let calib = gen.sample(2500, Population::Base, &mut rng);
        let test = gen.sample(2000, Population::Base, &mut rng);
        let config = RdrpConfig {
            drp: DrpConfig {
                epochs: 10,
                ..DrpConfig::default()
            },
            mc_passes: 15,
            ..RdrpConfig::default()
        };
        let mut dc = DivideAndConquerRdrp::new(config, 2).unwrap();
        dc.fit(&train, &calib, &mut rng, &Obs::disabled()).unwrap();
        let scores = dc.predict_scores(&test.x, &mut rng, &Obs::disabled());
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].len(), test.len());
        assert!(scores.iter().flatten().all(|s| s.is_finite()));

        // Allocate against ground-truth costs and check value vs random.
        let costs = test.true_tau_c.clone().unwrap();
        let values = test.true_tau_r.clone().unwrap();
        let budget = 0.2 * costs[0].iter().sum::<f64>();
        let alloc = crate::mckp::mckp_allocate(&scores, &costs, budget).unwrap();
        assert!(alloc.spent <= budget);
        let captured: f64 = alloc
            .assigned
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|k| values[(k - 1) as usize][i]))
            .sum();
        // Random multi-assignment baseline.
        let rand_scores: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..test.len()).map(|_| rng.uniform()).collect())
            .collect();
        let rand_alloc = crate::mckp::mckp_allocate(&rand_scores, &costs, budget).unwrap();
        let rand_captured: f64 = rand_alloc
            .assigned
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|k| values[(k - 1) as usize][i]))
            .sum();
        assert!(
            captured > rand_captured * 0.9,
            "D&C {captured} vs random {rand_captured}"
        );
    }

    #[test]
    fn comparable_scores_live_on_common_roi_scale() {
        let gen = MultiCouponGenerator::new(3);
        let mut rng = Prng::seed_from_u64(9);
        let train = gen.sample(5000, Population::Base, &mut rng);
        let calib = gen.sample(2000, Population::Base, &mut rng);
        let test = gen.sample(1000, Population::Base, &mut rng);
        let config = RdrpConfig {
            drp: DrpConfig {
                epochs: 8,
                ..DrpConfig::default()
            },
            mc_passes: 10,
            ..RdrpConfig::default()
        };
        let mut dc = DivideAndConquerRdrp::new(config, 3).unwrap();
        dc.fit(&train, &calib, &mut rng, &Obs::disabled()).unwrap();
        let comparable = dc.predict_comparable_scores(&test.x, &mut rng, &Obs::disabled());
        // All arms' scores live in (0, 1) — the common ROI scale.
        for (k, arm_scores) in comparable.iter().enumerate() {
            assert!(
                arm_scores.iter().all(|&s| (0.0..=1.0).contains(&s)),
                "arm {k} escaped (0,1)"
            );
        }
        // Quantile matching preserves each arm's calibrated ranking.
        let raw = dc.predict_scores(&test.x, &mut Prng::seed_from_u64(0x5C0BE), &Obs::disabled());
        let comparable2 = dc.predict_comparable_scores(
            &test.x,
            &mut Prng::seed_from_u64(0x5C0BE),
            &Obs::disabled(),
        );
        for k in 0..3 {
            let a = linalg::vector::argsort_desc(&raw[k]);
            let b = linalg::vector::argsort_desc(&comparable2[k]);
            assert_eq!(a, b, "arm {k} ranking changed");
        }
    }

    #[test]
    fn mismatched_arms_is_a_typed_error() {
        let gen2 = MultiCouponGenerator::new(2);
        let gen3 = MultiCouponGenerator::new(3);
        let mut rng = Prng::seed_from_u64(1);
        let train = gen3.sample(500, Population::Base, &mut rng);
        let calib = gen2.sample(500, Population::Base, &mut rng);
        let mut dc = DivideAndConquerRdrp::new(RdrpConfig::default(), 3).unwrap();
        let err = dc
            .fit(&train, &calib, &mut rng, &Obs::disabled())
            .unwrap_err();
        assert!(matches!(err, FitError::InvalidData(_)));
        assert!(err.to_string().contains("arm-count mismatch"));
    }

    #[test]
    fn zero_arms_is_a_config_error() {
        assert!(matches!(
            DivideAndConquerRdrp::new(RdrpConfig::default(), 0),
            Err(PipelineError::Config(_))
        ));
    }

    #[test]
    fn allocator_rejects_malformed_inputs() {
        use crate::mckp::mckp_allocate;
        let scores = vec![vec![0.5, 0.5]];
        let costs = vec![vec![1.0, 1.0]];
        assert!(matches!(
            mckp_allocate(&[], &[], 1.0),
            Err(PipelineError::Data(_))
        ));
        assert!(mckp_allocate(&scores, &[vec![1.0]], 1.0).is_err());
        // Zero costs are legal under MCKP (a free arm); negatives are not.
        assert!(mckp_allocate(&scores, &[vec![0.0, 1.0]], 1.0).is_ok());
        assert!(mckp_allocate(&scores, &[vec![-1.0, 1.0]], 1.0).is_err());
        assert!(mckp_allocate(&scores, &costs, -1.0).is_err());
        assert!(mckp_allocate(&scores, &costs, f64::NAN).is_err());
    }
}
