//! Multi-treatment rDRP via Divide and Conquer (paper §VI).
//!
//! The paper: "Divide and Conquer method can be adopted for multiple
//! treatment, which decomposes the multiple treatment problem into
//! several binary treatment problems. Then each binary treatment problem
//! can use the rDRP method." This module implements exactly that, plus
//! the multiple-choice knapsack greedy that spends one budget across
//! arms (each individual receives at most one treatment).

use crate::config::RdrpConfig;
use crate::error::PipelineError;
use crate::rdrp::Rdrp;
use datasets::multi::MultiRctDataset;
use linalg::random::Prng;
use linalg::Matrix;
use obs::Obs;
use uplift::FitError;

/// One rDRP per treatment arm, trained on that arm's binarized RCT.
#[derive(Debug, Clone)]
pub struct DivideAndConquerRdrp {
    models: Vec<Rdrp>,
    n_levels: u8,
}

impl DivideAndConquerRdrp {
    /// Creates `n_levels` unfitted rDRP models sharing one configuration.
    ///
    /// # Errors
    /// Returns [`PipelineError::Config`] when `n_levels` is 0 or the
    /// configuration is invalid.
    pub fn new(config: RdrpConfig, n_levels: u8) -> Result<Self, PipelineError> {
        if n_levels == 0 {
            return Err(PipelineError::Config(
                "need at least one treatment arm".to_string(),
            ));
        }
        let models = (0..n_levels)
            .map(|_| Rdrp::new(config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DivideAndConquerRdrp { models, n_levels })
    }

    /// Number of treatment arms.
    pub fn n_levels(&self) -> u8 {
        self.n_levels
    }

    /// Fits each arm's rDRP on the binarized train/calibration pair.
    ///
    /// # Errors
    /// Returns [`FitError::InvalidData`] when the datasets have a
    /// different number of arms than this model, and propagates any
    /// per-arm fitting failure.
    pub fn fit(
        &mut self,
        train: &MultiRctDataset,
        calibration: &MultiRctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError> {
        if train.n_levels != self.n_levels {
            return Err(FitError::InvalidData(format!(
                "train arm-count mismatch: {} vs {}",
                train.n_levels, self.n_levels
            )));
        }
        if calibration.n_levels != self.n_levels {
            return Err(FitError::InvalidData(format!(
                "calibration arm-count mismatch: {} vs {}",
                calibration.n_levels, self.n_levels
            )));
        }
        for k in 1..=self.n_levels {
            let bt = train.to_binary(k);
            let bc = calibration.to_binary(k);
            self.models[(k - 1) as usize].fit_with_calibration(&bt, &bc, rng, obs)?;
        }
        Ok(())
    }

    /// Per-arm ranking scores for every row of `x`:
    /// `scores[k][i]` is arm `k+1`'s score for individual `i`.
    ///
    /// # Panics
    /// Panics before [`DivideAndConquerRdrp::fit`].
    pub fn predict_scores(&self, x: &Matrix, rng: &mut Prng, obs: &Obs) -> Vec<Vec<f64>> {
        self.models
            .iter()
            .map(|m| m.predict_scores(x, rng, obs))
            .collect()
    }

    /// Access to an individual arm's model (1-based arm index).
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn arm(&self, k: u8) -> &Rdrp {
        assert!(k >= 1 && k <= self.n_levels, "arm {k} out of range");
        &self.models[(k - 1) as usize]
    }

    /// Cross-arm **comparable** scores for the multiple-choice allocator.
    ///
    /// Each arm's calibrated rDRP score is only rank-valid *within* that
    /// arm (different arms may select different Eq. 5 forms with very
    /// different magnitudes — e.g. `roi + r̂q̂` vs raw `roi`). Comparing
    /// raw calibrated scores across arms would let one arm's scale
    /// monopolize the budget. This method quantile-matches: within each
    /// arm, individuals are ordered by the calibrated score but *valued*
    /// by the arm's own sorted DRP point-ROI estimates, putting every arm
    /// on the common (0, 1) ROI scale while preserving rDRP's ranking.
    ///
    /// # Panics
    /// Panics before [`DivideAndConquerRdrp::fit`].
    pub fn predict_comparable_scores(
        &self,
        x: &Matrix,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Vec<Vec<f64>> {
        use linalg::vector::argsort_desc;
        self.models
            .iter()
            .map(|m| {
                let calibrated = m.predict_scores(x, rng, obs);
                let mut roi_values = m.drp().predict_roi(x, obs);
                roi_values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let order = argsort_desc(&calibrated);
                let mut out = vec![0.0; calibrated.len()];
                for (rank, &i) in order.iter().enumerate() {
                    out[i] = roi_values[rank];
                }
                out
            })
            .collect()
    }
}

/// An assignment of at most one treatment arm per individual.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAllocation {
    /// `Some(k)` = individual receives arm `k` (1-based); `None` = control.
    pub assigned: Vec<Option<u8>>,
    /// Total expected incremental cost.
    pub spent: f64,
    /// Number of treated individuals.
    pub n_treated: usize,
}

/// Greedy multiple-choice knapsack: rank all `(individual, arm)` pairs by
/// score descending; take a pair when the individual is still untreated
/// and its cost fits the remaining budget (pairs that do not fit are
/// skipped, not a hard stop — with per-arm costs a hard stop would strand
/// budget on the most expensive arm).
///
/// `scores[k][i]` and `costs[k][i]` are arm `k+1`'s score and expected
/// incremental cost for individual `i`.
///
/// # Errors
/// Returns [`PipelineError::Data`] on ragged inputs, non-positive costs,
/// or a budget that is negative or NaN.
pub fn greedy_allocate_multi(
    scores: &[Vec<f64>],
    costs: &[Vec<f64>],
    budget: f64,
) -> Result<MultiAllocation, PipelineError> {
    if scores.is_empty() {
        return Err(PipelineError::Data(
            "greedy_allocate_multi: no arms".to_string(),
        ));
    }
    if scores.len() != costs.len() {
        return Err(PipelineError::Data(format!(
            "greedy_allocate_multi: {} score arms but {} cost arms",
            scores.len(),
            costs.len()
        )));
    }
    let n = scores[0].len();
    for (k, (s, c)) in scores.iter().zip(costs).enumerate() {
        if s.len() != n {
            return Err(PipelineError::Data(format!("ragged scores at arm {k}")));
        }
        if c.len() != n {
            return Err(PipelineError::Data(format!("ragged costs at arm {k}")));
        }
        if !c.iter().all(|&v| v > 0.0) {
            return Err(PipelineError::Data(format!(
                "arm {k}: costs must be positive (Assumption 4)"
            )));
        }
    }
    if budget.is_nan() || budget < 0.0 {
        return Err(PipelineError::Data(format!(
            "budget {budget} must be non-negative"
        )));
    }
    // Flatten and sort (arm, individual) pairs by score.
    let mut pairs: Vec<(usize, usize)> = (0..scores.len())
        .flat_map(|k| (0..n).map(move |i| (k, i)))
        .collect();
    pairs.sort_by(|a, b| {
        scores[b.0][b.1]
            .partial_cmp(&scores[a.0][a.1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut assigned: Vec<Option<u8>> = vec![None; n];
    let mut spent = 0.0;
    let mut n_treated = 0usize;
    for (k, i) in pairs {
        if assigned[i].is_some() {
            continue;
        }
        let cost = costs[k][i];
        if spent + cost > budget {
            continue;
        }
        assigned[i] = Some(k as u8 + 1);
        spent += cost;
        n_treated += 1;
    }
    Ok(MultiAllocation {
        assigned,
        spent,
        n_treated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DrpConfig;
    use datasets::generator::Population;
    use datasets::multi::MultiCouponGenerator;

    #[test]
    fn greedy_multi_prefers_higher_scores_and_respects_budget() {
        // Two arms, three individuals.
        let scores = vec![vec![0.9, 0.1, 0.5], vec![0.8, 0.7, 0.2]];
        let costs = vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0]];
        let alloc = greedy_allocate_multi(&scores, &costs, 3.0).unwrap();
        // Best pair: (arm1, ind0, 0.9, cost 1). Next (arm2, ind0) skipped
        // (ind0 taken). Then (arm2, ind1, 0.7, cost 2) fits.
        assert_eq!(alloc.assigned[0], Some(1));
        assert_eq!(alloc.assigned[1], Some(2));
        assert_eq!(alloc.assigned[2], None);
        assert_eq!(alloc.spent, 3.0);
        assert_eq!(alloc.n_treated, 2);
    }

    #[test]
    fn skip_rule_fills_budget_past_expensive_pairs() {
        let scores = vec![vec![0.9, 0.5]];
        let costs = vec![vec![10.0, 1.0]];
        // The best pair does not fit; the next one does.
        let alloc = greedy_allocate_multi(&scores, &costs, 1.5).unwrap();
        assert_eq!(alloc.assigned[0], None);
        assert_eq!(alloc.assigned[1], Some(1));
    }

    #[test]
    fn each_individual_gets_at_most_one_arm() {
        let scores = vec![vec![0.9; 5], vec![0.8; 5], vec![0.7; 5]];
        let costs = vec![vec![0.1; 5]; 3];
        let alloc = greedy_allocate_multi(&scores, &costs, 100.0).unwrap();
        assert_eq!(alloc.n_treated, 5);
        assert!(alloc.assigned.iter().all(|a| a.is_some()));
    }

    #[test]
    fn divide_and_conquer_end_to_end() {
        let gen = MultiCouponGenerator::new(2);
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(6000, Population::Base, &mut rng);
        let calib = gen.sample(2500, Population::Base, &mut rng);
        let test = gen.sample(2000, Population::Base, &mut rng);
        let config = RdrpConfig {
            drp: DrpConfig {
                epochs: 10,
                ..DrpConfig::default()
            },
            mc_passes: 15,
            ..RdrpConfig::default()
        };
        let mut dc = DivideAndConquerRdrp::new(config, 2).unwrap();
        dc.fit(&train, &calib, &mut rng, &Obs::disabled()).unwrap();
        let scores = dc.predict_scores(&test.x, &mut rng, &Obs::disabled());
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].len(), test.len());
        assert!(scores.iter().flatten().all(|s| s.is_finite()));

        // Allocate against ground-truth costs and check value vs random.
        let costs = test.true_tau_c.clone().unwrap();
        let values = test.true_tau_r.clone().unwrap();
        let budget = 0.2 * costs[0].iter().sum::<f64>();
        let alloc = greedy_allocate_multi(&scores, &costs, budget).unwrap();
        assert!(alloc.spent <= budget);
        let captured: f64 = alloc
            .assigned
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|k| values[(k - 1) as usize][i]))
            .sum();
        // Random multi-assignment baseline.
        let rand_scores: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..test.len()).map(|_| rng.uniform()).collect())
            .collect();
        let rand_alloc = greedy_allocate_multi(&rand_scores, &costs, budget).unwrap();
        let rand_captured: f64 = rand_alloc
            .assigned
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|k| values[(k - 1) as usize][i]))
            .sum();
        assert!(
            captured > rand_captured * 0.9,
            "D&C {captured} vs random {rand_captured}"
        );
    }

    #[test]
    fn comparable_scores_live_on_common_roi_scale() {
        let gen = MultiCouponGenerator::new(3);
        let mut rng = Prng::seed_from_u64(9);
        let train = gen.sample(5000, Population::Base, &mut rng);
        let calib = gen.sample(2000, Population::Base, &mut rng);
        let test = gen.sample(1000, Population::Base, &mut rng);
        let config = RdrpConfig {
            drp: DrpConfig {
                epochs: 8,
                ..DrpConfig::default()
            },
            mc_passes: 10,
            ..RdrpConfig::default()
        };
        let mut dc = DivideAndConquerRdrp::new(config, 3).unwrap();
        dc.fit(&train, &calib, &mut rng, &Obs::disabled()).unwrap();
        let comparable = dc.predict_comparable_scores(&test.x, &mut rng, &Obs::disabled());
        // All arms' scores live in (0, 1) — the common ROI scale.
        for (k, arm_scores) in comparable.iter().enumerate() {
            assert!(
                arm_scores.iter().all(|&s| (0.0..=1.0).contains(&s)),
                "arm {k} escaped (0,1)"
            );
        }
        // Quantile matching preserves each arm's calibrated ranking.
        let raw = dc.predict_scores(&test.x, &mut Prng::seed_from_u64(0x5C0BE), &Obs::disabled());
        let comparable2 = dc.predict_comparable_scores(
            &test.x,
            &mut Prng::seed_from_u64(0x5C0BE),
            &Obs::disabled(),
        );
        for k in 0..3 {
            let a = linalg::vector::argsort_desc(&raw[k]);
            let b = linalg::vector::argsort_desc(&comparable2[k]);
            assert_eq!(a, b, "arm {k} ranking changed");
        }
    }

    #[test]
    fn mismatched_arms_is_a_typed_error() {
        let gen2 = MultiCouponGenerator::new(2);
        let gen3 = MultiCouponGenerator::new(3);
        let mut rng = Prng::seed_from_u64(1);
        let train = gen3.sample(500, Population::Base, &mut rng);
        let calib = gen2.sample(500, Population::Base, &mut rng);
        let mut dc = DivideAndConquerRdrp::new(RdrpConfig::default(), 3).unwrap();
        let err = dc
            .fit(&train, &calib, &mut rng, &Obs::disabled())
            .unwrap_err();
        assert!(matches!(err, FitError::InvalidData(_)));
        assert!(err.to_string().contains("arm-count mismatch"));
    }

    #[test]
    fn zero_arms_is_a_config_error() {
        assert!(matches!(
            DivideAndConquerRdrp::new(RdrpConfig::default(), 0),
            Err(PipelineError::Config(_))
        ));
    }

    #[test]
    fn allocator_rejects_malformed_inputs() {
        let scores = vec![vec![0.5, 0.5]];
        let costs = vec![vec![1.0, 1.0]];
        assert!(matches!(
            greedy_allocate_multi(&[], &[], 1.0),
            Err(PipelineError::Data(_))
        ));
        assert!(greedy_allocate_multi(&scores, &[vec![1.0]], 1.0).is_err());
        assert!(greedy_allocate_multi(&scores, &[vec![0.0, 1.0]], 1.0).is_err());
        assert!(greedy_allocate_multi(&scores, &costs, -1.0).is_err());
        assert!(greedy_allocate_multi(&scores, &costs, f64::NAN).is_err());
    }
}
