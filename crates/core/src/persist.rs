//! Model persistence.
//!
//! Trained DRP/rDRP models serialize to JSON (weights, scaler, conformal
//! quantile, selected calibration form — everything needed to reproduce
//! predictions bit-for-bit; optimizer state and forward caches are
//! transient and excluded). The deployment story the paper describes —
//! train offline, calibrate on a fresh RCT, then serve — needs exactly
//! this boundary.
//!
//! The [`Persist`] trait is the one entry point: `Model::save(path)` /
//! `Model::load(path)` on every persistable model. The old free
//! functions (`save_rdrp` and friends) remain as deprecated shims for
//! one release.

use crate::drp::DrpModel;
use crate::rdrp::Rdrp;
use std::fmt;
use std::fs;
use std::path::Path;
use tinyjson::{FromJson, ToJson};

/// Errors from saving/loading models.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(tinyjson::JsonError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<tinyjson::JsonError> for PersistError {
    fn from(e: tinyjson::JsonError) -> Self {
        PersistError::Serde(e)
    }
}

/// Pretty-JSON file persistence for trained models.
///
/// Implementors roundtrip bit-for-bit: `T::load(p)` after `m.save(p)`
/// yields a model whose predictions equal `m`'s exactly (the JSON float
/// encoder is shortest-roundtrip).
pub trait Persist: Sized {
    /// Writes the model (trained or not) as pretty JSON to `path`.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be written.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError>;

    /// Reads a model previously written by [`Persist::save`].
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read,
    /// [`PersistError::Serde`] when its contents do not parse as this
    /// model type.
    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError>;
}

impl Persist for Rdrp {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, tinyjson::to_string_pretty(&self.to_json()))?;
        Ok(())
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(Rdrp::from_json(&tinyjson::from_str(&fs::read_to_string(
            path,
        )?)?)?)
    }
}

impl Persist for DrpModel {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, tinyjson::to_string_pretty(&self.to_json()))?;
        Ok(())
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(DrpModel::from_json(&tinyjson::from_str(
            &fs::read_to_string(path)?,
        )?)?)
    }
}

/// Saves an rDRP model (trained or not) as pretty JSON.
#[deprecated(since = "0.2.0", note = "use `Persist::save` (`model.save(path)`)")]
pub fn save_rdrp(model: &Rdrp, path: impl AsRef<Path>) -> Result<(), PersistError> {
    Persist::save(model, path)
}

/// Loads an rDRP model saved by [`Persist::save`].
#[deprecated(since = "0.2.0", note = "use `Persist::load` (`Rdrp::load(path)`)")]
pub fn load_rdrp(path: impl AsRef<Path>) -> Result<Rdrp, PersistError> {
    Rdrp::load(path)
}

/// Saves a DRP model as pretty JSON.
#[deprecated(since = "0.2.0", note = "use `Persist::save` (`model.save(path)`)")]
pub fn save_drp(model: &DrpModel, path: impl AsRef<Path>) -> Result<(), PersistError> {
    Persist::save(model, path)
}

/// Loads a DRP model saved by [`Persist::save`].
#[deprecated(since = "0.2.0", note = "use `Persist::load` (`DrpModel::load(path)`)")]
pub fn load_drp(path: impl AsRef<Path>) -> Result<DrpModel, PersistError> {
    DrpModel::load(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DrpConfig, RdrpConfig};
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;
    use linalg::random::Prng;
    use obs::Obs;
    use uplift::RoiModel;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rdrp_persist_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn drp_roundtrips_with_identical_predictions() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(1500, Population::Base, &mut rng);
        let test = gen.sample(200, Population::Base, &mut rng);
        let mut model = DrpModel::new(DrpConfig {
            epochs: 5,
            ..DrpConfig::default()
        });
        model.fit(&train, &mut rng, &Obs::disabled()).unwrap();
        let path = tmp("drp");
        model.save(&path).unwrap();
        let loaded = DrpModel::load(&path).unwrap();
        assert_eq!(
            model.predict_roi(&test.x, &Obs::disabled()),
            loaded.predict_roi(&test.x, &Obs::disabled())
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rdrp_roundtrips_with_identical_scores_and_diagnostics() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(1);
        let train = gen.sample(2500, Population::Base, &mut rng);
        let cal = gen.sample(1200, Population::Base, &mut rng);
        let test = gen.sample(200, Population::Base, &mut rng);
        let mut model = Rdrp::new(RdrpConfig {
            drp: DrpConfig {
                epochs: 5,
                ..DrpConfig::default()
            },
            mc_passes: 10,
            ..RdrpConfig::default()
        })
        .unwrap();
        model
            .fit_with_calibration(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap();
        let path = tmp("rdrp");
        model.save(&path).unwrap();
        let loaded = Rdrp::load(&path).unwrap();
        assert_eq!(model.predict_roi(&test.x), loaded.predict_roi(&test.x));
        assert_eq!(model.diagnostics().qhat, loaded.diagnostics().qhat);
        assert_eq!(
            model.diagnostics().selected_form,
            loaded.diagnostics().selected_form
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            DrpModel::load("/nonexistent/rdrp_model.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(Rdrp::load(&path), Err(PersistError::Serde(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_free_functions_still_roundtrip() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(2);
        let train = gen.sample(1200, Population::Base, &mut rng);
        let test = gen.sample(100, Population::Base, &mut rng);
        let mut model = DrpModel::new(DrpConfig {
            epochs: 3,
            ..DrpConfig::default()
        });
        model.fit(&train, &mut rng, &Obs::disabled()).unwrap();
        let path = tmp("shim");
        save_drp(&model, &path).unwrap();
        let loaded = load_drp(&path).unwrap();
        assert_eq!(
            model.predict_roi(&test.x, &Obs::disabled()),
            loaded.predict_roi(&test.x, &Obs::disabled())
        );
        let _ = std::fs::remove_file(path);
    }
}
