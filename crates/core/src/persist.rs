//! Model persistence.
//!
//! Trained models serialize to JSON (weights, scaler, conformal
//! quantile, selected calibration form — everything needed to reproduce
//! predictions bit-for-bit; optimizer state and forward caches are
//! transient and excluded). The deployment story the paper describes —
//! train offline, calibrate on a fresh RCT, then serve — needs exactly
//! this boundary.
//!
//! Every file is a [`crate::artifact`] envelope: a `format_version`, a
//! `method` tag, and the model body. The [`Persist`] trait is the typed
//! entry point (`Model::save(path)` / `Model::load(path)` checks the tag
//! matches the type); [`crate::methods::load_method`] is the dynamic one
//! (any tag, dispatched through the registry).

use crate::artifact;
use crate::bootstrap_uq::BootstrapDrp;
use crate::drp::DrpModel;
use crate::rdrp::Rdrp;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use tinyjson::{FromJson, ToJson};
use uplift::{DirectRank, Tpm};

/// Errors from saving/loading models.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(tinyjson::JsonError),
    /// The file parses as JSON but is not a loadable artifact: missing or
    /// unsupported envelope, or a method tag the caller cannot accept.
    Format(String),
    /// The envelope's integrity stamp does not match its body: the file
    /// was altered after it was written (bit rot, a torn copy, a manual
    /// edit). Loading stops here rather than serving a model whose
    /// weights differ from what training saved.
    Checksum {
        /// The stamp recorded in the file.
        expected: String,
        /// What the body actually hashes to.
        computed: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
            PersistError::Format(m) => write!(f, "artifact format error: {m}"),
            PersistError::Checksum { expected, computed } => write!(
                f,
                "artifact checksum mismatch: file says {expected}, body hashes to {computed}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<tinyjson::JsonError> for PersistError {
    fn from(e: tinyjson::JsonError) -> Self {
        PersistError::Serde(e)
    }
}

/// Versioned-artifact file persistence for trained models.
///
/// Implementors roundtrip bit-for-bit: `T::load(p)` after `m.save(p)`
/// yields a model whose predictions equal `m`'s exactly (the JSON float
/// encoder is shortest-roundtrip). The file is an artifact envelope;
/// `load` rejects files whose method tag belongs to a different type
/// with [`PersistError::Format`] instead of half-parsing them.
pub trait Persist: Sized {
    /// Writes the model (trained or not) as a pretty-JSON artifact, via
    /// the crash-safe [`atomic_write_artifact`] path: a failed or
    /// interrupted save leaves any previous artifact at `path` intact.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be written.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError>;

    /// Reads a model previously written by [`Persist::save`].
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read,
    /// [`PersistError::Serde`] when its contents do not parse as this
    /// model type, [`PersistError::Format`] when the file is not an
    /// artifact or carries another model's tag, and
    /// [`PersistError::Checksum`] when the envelope's integrity stamp
    /// does not match the body.
    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError>;
}

/// Writes an artifact crash-safely: the bytes go to a temp sibling in
/// the same directory, are flushed with `sync_all`, and the temp file is
/// atomically renamed over the destination. An interrupted save leaves
/// either the old complete artifact or the new complete artifact on
/// disk — never a torn mix — and the temp file is removed on failure.
///
/// Chaos points `persist.write`, `persist.fsync`, and `persist.rename`
/// (consulted through [`chaos::ambient`]) let the fault-injection suite
/// kill the save at each stage.
///
/// # Errors
/// [`PersistError::Io`] when any stage fails; the destination is
/// untouched in that case.
pub fn atomic_write_artifact(path: impl AsRef<Path>, contents: &str) -> Result<(), PersistError> {
    let path = path.as_ref();
    let harness = chaos::ambient();
    let tmp = tmp_sibling(path);
    let staged = write_flushed(&tmp, contents.as_bytes(), &harness).and_then(|()| {
        harness.io_point("persist.rename")?;
        fs::rename(&tmp, path)
    });
    if staged.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    staged?;
    sync_dir(path);
    Ok(())
}

// The temp name carries the pid so concurrent processes saving to the
// same destination stage through distinct siblings.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "artifact".into());
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

fn write_flushed(tmp: &Path, bytes: &[u8], harness: &chaos::Chaos) -> std::io::Result<()> {
    let mut f = fs::File::create(tmp)?;
    if let Some(fault) = harness.hit("persist.write") {
        // A crash mid-write: deliver whatever prefix the fault allows,
        // flush it so the torn file really exists, then fail.
        let mut partial = bytes.to_vec();
        chaos::mangle(&fault, &mut partial);
        if partial.len() < bytes.len() {
            f.write_all(&partial)?;
            let _ = f.sync_all();
        }
        return Err(fault.to_io_error());
    }
    f.write_all(bytes)?;
    harness.io_point("persist.fsync")?;
    f.sync_all()
}

// Durability of the rename itself: fsync the containing directory where
// the platform can open one; best-effort everywhere.
fn sync_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Reads an artifact file's text, with the chaos `persist.read` point
/// applied to the raw bytes (injected I/O failure, short read, flipped
/// byte) before decoding.
pub(crate) fn read_artifact(path: impl AsRef<Path>) -> Result<String, PersistError> {
    let harness = chaos::ambient();
    let fault = harness.hit("persist.read");
    if let Some(f) = &fault {
        if matches!(f.kind, chaos::FaultKind::Io | chaos::FaultKind::Disconnect) {
            return Err(PersistError::Io(f.to_io_error()));
        }
    }
    let mut bytes = fs::read(path)?;
    if let Some(f) = &fault {
        chaos::mangle(f, &mut bytes);
    }
    String::from_utf8(bytes)
        .map_err(|e| PersistError::Format(format!("artifact is not UTF-8: {e}")))
}

/// Reads `path` and unwraps its envelope, accepting tags per `accept`.
fn read_body(
    path: impl AsRef<Path>,
    expectation: &str,
    accept: impl Fn(&str) -> bool,
) -> Result<tinyjson::Value, PersistError> {
    let v = tinyjson::from_str(&read_artifact(path)?)?;
    let (_, body) = artifact::decode_expecting(&v, expectation, accept)?;
    Ok(body.clone())
}

impl Persist for Rdrp {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        atomic_write_artifact(path, &artifact::render("rdrp", self.to_json()))
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(Rdrp::from_json(&read_body(path, "\"rdrp\"", |t| {
            t == "rdrp"
        })?)?)
    }
}

impl Persist for DrpModel {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        atomic_write_artifact(path, &artifact::render("drp", self.to_json()))
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(DrpModel::from_json(&read_body(path, "\"drp\"", |t| {
            t == "drp"
        })?)?)
    }
}

impl Persist for Tpm {
    /// Tag is `tpm-<lowercase label>` (e.g. `tpm-sl`, `tpm-dragonnet`),
    /// matching the registry names of `crate::methods`.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let tag = format!("tpm-{}", self.label().to_lowercase());
        atomic_write_artifact(path, &artifact::render(&tag, self.to_json()))
    }

    /// Accepts any `tpm-*` artifact; the body's label says which variant.
    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(Tpm::from_json(&read_body(path, "a \"tpm-*\" tag", |t| {
            t.starts_with("tpm-")
        })?)?)
    }
}

impl Persist for DirectRank {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        atomic_write_artifact(path, &artifact::render("dr", self.to_json()))
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(DirectRank::from_json(&read_body(path, "\"dr\"", |t| {
            t == "dr"
        })?)?)
    }
}

impl Persist for BootstrapDrp {
    /// The canonical `bootstrap-drp` body is `{model, std_floor}` — the
    /// std floor is a scoring-time parameter carried by the artifact,
    /// not by the ensemble itself, so this impl writes the default floor
    /// and ignores the field on load. `crate::methods` round-trips it.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let body = tinyjson::Value::Obj(vec![
            ("model".to_string(), self.to_json()),
            (
                "std_floor".to_string(),
                crate::config::RdrpConfig::default().std_floor.to_json(),
            ),
        ]);
        atomic_write_artifact(path, &artifact::render("bootstrap-drp", body))
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let body = read_body(path, "\"bootstrap-drp\"", |t| t == "bootstrap-drp")?;
        Ok(BootstrapDrp::from_json(body.fetch("model"))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DrpConfig, RdrpConfig};
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;
    use linalg::random::Prng;
    use obs::Obs;
    use uplift::RoiModel;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rdrp_persist_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn drp_roundtrips_with_identical_predictions() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(1500, Population::Base, &mut rng);
        let test = gen.sample(200, Population::Base, &mut rng);
        let mut model = DrpModel::new(DrpConfig {
            epochs: 5,
            ..DrpConfig::default()
        });
        model.fit(&train, &mut rng, &Obs::disabled()).unwrap();
        let path = tmp("drp");
        model.save(&path).unwrap();
        let loaded = DrpModel::load(&path).unwrap();
        assert_eq!(
            model.predict_roi(&test.x, &Obs::disabled()),
            loaded.predict_roi(&test.x, &Obs::disabled())
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rdrp_roundtrips_with_identical_scores_and_diagnostics() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(1);
        let train = gen.sample(2500, Population::Base, &mut rng);
        let cal = gen.sample(1200, Population::Base, &mut rng);
        let test = gen.sample(200, Population::Base, &mut rng);
        let mut model = Rdrp::new(RdrpConfig {
            drp: DrpConfig {
                epochs: 5,
                ..DrpConfig::default()
            },
            mc_passes: 10,
            ..RdrpConfig::default()
        })
        .unwrap();
        model
            .fit_with_calibration(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap();
        let path = tmp("rdrp");
        model.save(&path).unwrap();
        let loaded = Rdrp::load(&path).unwrap();
        assert_eq!(model.predict_roi(&test.x), loaded.predict_roi(&test.x));
        assert_eq!(model.diagnostics().qhat, loaded.diagnostics().qhat);
        assert_eq!(
            model.diagnostics().selected_form,
            loaded.diagnostics().selected_form
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn interrupted_save_leaves_previous_artifact_intact() {
        let path = tmp("atomic");
        let model = DrpModel::new(DrpConfig::default());
        model.save(&path).unwrap();

        for point in ["persist.write", "persist.fsync", "persist.rename"] {
            let plan =
                chaos::FaultPlan::new().fail(point, chaos::Trigger::Nth(1), chaos::FaultKind::Io);
            let _guard = chaos::install(chaos::Chaos::new(plan, Obs::disabled()));
            let err = model.save(&path).unwrap_err();
            assert!(matches!(err, PersistError::Io(_)), "{point}: {err:?}");
            // The old artifact survives the failed save, checksum and all.
            DrpModel::load(&path).unwrap_or_else(|e| panic!("{point}: {e}"));
        }
        // No staged temp files left behind.
        assert!(!tmp_sibling(&path).exists());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn chaos_read_faults_surface_as_typed_errors() {
        let path = tmp("readfault");
        DrpModel::new(DrpConfig::default()).save(&path).unwrap();
        let plan = chaos::FaultPlan::new()
            .fail("persist.read", chaos::Trigger::Nth(1), chaos::FaultKind::Io)
            .fail(
                "persist.read",
                chaos::Trigger::Nth(2),
                chaos::FaultKind::Truncate(40),
            );
        let _guard = chaos::install(chaos::Chaos::new(plan, Obs::disabled()));
        assert!(matches!(DrpModel::load(&path), Err(PersistError::Io(_))));
        // A 40-byte prefix of the envelope is unparseable JSON.
        assert!(matches!(DrpModel::load(&path), Err(PersistError::Serde(_))));
        // Hit 3: no rule, the artifact loads normally again.
        DrpModel::load(&path).unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            DrpModel::load("/nonexistent/rdrp_model.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(Rdrp::load(&path), Err(PersistError::Serde(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn typed_load_rejects_other_methods_artifact() {
        let model = DrpModel::new(DrpConfig::default());
        let path = tmp("mismatch");
        model.save(&path).unwrap();
        let err = Rdrp::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err:?}");
        assert!(err.to_string().contains("rdrp"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn raw_pre_envelope_json_is_a_format_error() {
        let model = DrpModel::new(DrpConfig::default());
        let path = tmp("preenvelope");
        // What the pre-artifact format used to write: the bare body.
        std::fs::write(&path, tinyjson::to_string_pretty(&model.to_json())).unwrap();
        assert!(matches!(
            DrpModel::load(&path),
            Err(PersistError::Format(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tpm_roundtrips_with_identical_predictions() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(3);
        let train = gen.sample(1500, Population::Base, &mut rng);
        let test = gen.sample(150, Population::Base, &mut rng);
        let mut model = Tpm::xlearner();
        model.fit(&train, &mut rng).unwrap();
        let path = tmp("tpm");
        model.save(&path).unwrap();
        let loaded = Tpm::load(&path).unwrap();
        assert_eq!(loaded.label(), "XL");
        assert_eq!(loaded.n_features(), Some(test.x.cols()));
        assert_eq!(model.predict_roi(&test.x), loaded.predict_roi(&test.x));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn direct_rank_roundtrips_with_identical_predictions() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(4);
        let train = gen.sample(1200, Population::Base, &mut rng);
        let test = gen.sample(100, Population::Base, &mut rng);
        let mut model = DirectRank::new(uplift::NetConfig {
            epochs: 4,
            ..uplift::NetConfig::default()
        });
        model.fit(&train, &mut rng).unwrap();
        let path = tmp("dr");
        model.save(&path).unwrap();
        let loaded = DirectRank::load(&path).unwrap();
        assert_eq!(model.predict_roi(&test.x), loaded.predict_roi(&test.x));
        let _ = std::fs::remove_file(path);
    }
}
