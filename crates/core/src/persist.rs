//! Model persistence.
//!
//! Trained models serialize to JSON (weights, scaler, conformal
//! quantile, selected calibration form — everything needed to reproduce
//! predictions bit-for-bit; optimizer state and forward caches are
//! transient and excluded). The deployment story the paper describes —
//! train offline, calibrate on a fresh RCT, then serve — needs exactly
//! this boundary.
//!
//! Every file is a [`crate::artifact`] envelope: a `format_version`, a
//! `method` tag, and the model body. The [`Persist`] trait is the typed
//! entry point (`Model::save(path)` / `Model::load(path)` checks the tag
//! matches the type); [`crate::methods::load_method`] is the dynamic one
//! (any tag, dispatched through the registry).

use crate::artifact;
use crate::bootstrap_uq::BootstrapDrp;
use crate::drp::DrpModel;
use crate::rdrp::Rdrp;
use std::fmt;
use std::fs;
use std::path::Path;
use tinyjson::{FromJson, ToJson};
use uplift::{DirectRank, Tpm};

/// Errors from saving/loading models.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization/deserialization failure.
    Serde(tinyjson::JsonError),
    /// The file parses as JSON but is not a loadable artifact: missing or
    /// unsupported envelope, or a method tag the caller cannot accept.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
            PersistError::Format(m) => write!(f, "artifact format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<tinyjson::JsonError> for PersistError {
    fn from(e: tinyjson::JsonError) -> Self {
        PersistError::Serde(e)
    }
}

/// Versioned-artifact file persistence for trained models.
///
/// Implementors roundtrip bit-for-bit: `T::load(p)` after `m.save(p)`
/// yields a model whose predictions equal `m`'s exactly (the JSON float
/// encoder is shortest-roundtrip). The file is an artifact envelope;
/// `load` rejects files whose method tag belongs to a different type
/// with [`PersistError::Format`] instead of half-parsing them.
pub trait Persist: Sized {
    /// Writes the model (trained or not) as a pretty-JSON artifact.
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be written.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError>;

    /// Reads a model previously written by [`Persist::save`].
    ///
    /// # Errors
    /// [`PersistError::Io`] when the file cannot be read,
    /// [`PersistError::Serde`] when its contents do not parse as this
    /// model type, [`PersistError::Format`] when the file is not an
    /// artifact or carries another model's tag.
    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError>;
}

/// Reads `path` and unwraps its envelope, accepting tags per `accept`.
fn read_body(
    path: impl AsRef<Path>,
    expectation: &str,
    accept: impl Fn(&str) -> bool,
) -> Result<tinyjson::Value, PersistError> {
    let v = tinyjson::from_str(&fs::read_to_string(path)?)?;
    let (_, body) = artifact::decode_expecting(&v, expectation, accept)?;
    Ok(body.clone())
}

impl Persist for Rdrp {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, artifact::render("rdrp", self.to_json()))?;
        Ok(())
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(Rdrp::from_json(&read_body(path, "\"rdrp\"", |t| {
            t == "rdrp"
        })?)?)
    }
}

impl Persist for DrpModel {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, artifact::render("drp", self.to_json()))?;
        Ok(())
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(DrpModel::from_json(&read_body(path, "\"drp\"", |t| {
            t == "drp"
        })?)?)
    }
}

impl Persist for Tpm {
    /// Tag is `tpm-<lowercase label>` (e.g. `tpm-sl`, `tpm-dragonnet`),
    /// matching the registry names of `crate::methods`.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let tag = format!("tpm-{}", self.label().to_lowercase());
        fs::write(path, artifact::render(&tag, self.to_json()))?;
        Ok(())
    }

    /// Accepts any `tpm-*` artifact; the body's label says which variant.
    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(Tpm::from_json(&read_body(path, "a \"tpm-*\" tag", |t| {
            t.starts_with("tpm-")
        })?)?)
    }
}

impl Persist for DirectRank {
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, artifact::render("dr", self.to_json()))?;
        Ok(())
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Ok(DirectRank::from_json(&read_body(path, "\"dr\"", |t| {
            t == "dr"
        })?)?)
    }
}

impl Persist for BootstrapDrp {
    /// The canonical `bootstrap-drp` body is `{model, std_floor}` — the
    /// std floor is a scoring-time parameter carried by the artifact,
    /// not by the ensemble itself, so this impl writes the default floor
    /// and ignores the field on load. `crate::methods` round-trips it.
    fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let body = tinyjson::Value::Obj(vec![
            ("model".to_string(), self.to_json()),
            (
                "std_floor".to_string(),
                crate::config::RdrpConfig::default().std_floor.to_json(),
            ),
        ]);
        fs::write(path, artifact::render("bootstrap-drp", body))?;
        Ok(())
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let body = read_body(path, "\"bootstrap-drp\"", |t| t == "bootstrap-drp")?;
        Ok(BootstrapDrp::from_json(body.fetch("model"))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DrpConfig, RdrpConfig};
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;
    use linalg::random::Prng;
    use obs::Obs;
    use uplift::RoiModel;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rdrp_persist_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn drp_roundtrips_with_identical_predictions() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(1500, Population::Base, &mut rng);
        let test = gen.sample(200, Population::Base, &mut rng);
        let mut model = DrpModel::new(DrpConfig {
            epochs: 5,
            ..DrpConfig::default()
        });
        model.fit(&train, &mut rng, &Obs::disabled()).unwrap();
        let path = tmp("drp");
        model.save(&path).unwrap();
        let loaded = DrpModel::load(&path).unwrap();
        assert_eq!(
            model.predict_roi(&test.x, &Obs::disabled()),
            loaded.predict_roi(&test.x, &Obs::disabled())
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rdrp_roundtrips_with_identical_scores_and_diagnostics() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(1);
        let train = gen.sample(2500, Population::Base, &mut rng);
        let cal = gen.sample(1200, Population::Base, &mut rng);
        let test = gen.sample(200, Population::Base, &mut rng);
        let mut model = Rdrp::new(RdrpConfig {
            drp: DrpConfig {
                epochs: 5,
                ..DrpConfig::default()
            },
            mc_passes: 10,
            ..RdrpConfig::default()
        })
        .unwrap();
        model
            .fit_with_calibration(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap();
        let path = tmp("rdrp");
        model.save(&path).unwrap();
        let loaded = Rdrp::load(&path).unwrap();
        assert_eq!(model.predict_roi(&test.x), loaded.predict_roi(&test.x));
        assert_eq!(model.diagnostics().qhat, loaded.diagnostics().qhat);
        assert_eq!(
            model.diagnostics().selected_form,
            loaded.diagnostics().selected_form
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            DrpModel::load("/nonexistent/rdrp_model.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(matches!(Rdrp::load(&path), Err(PersistError::Serde(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn typed_load_rejects_other_methods_artifact() {
        let model = DrpModel::new(DrpConfig::default());
        let path = tmp("mismatch");
        model.save(&path).unwrap();
        let err = Rdrp::load(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err:?}");
        assert!(err.to_string().contains("rdrp"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn raw_pre_envelope_json_is_a_format_error() {
        let model = DrpModel::new(DrpConfig::default());
        let path = tmp("preenvelope");
        // What the pre-artifact format used to write: the bare body.
        std::fs::write(&path, tinyjson::to_string_pretty(&model.to_json())).unwrap();
        assert!(matches!(
            DrpModel::load(&path),
            Err(PersistError::Format(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tpm_roundtrips_with_identical_predictions() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(3);
        let train = gen.sample(1500, Population::Base, &mut rng);
        let test = gen.sample(150, Population::Base, &mut rng);
        let mut model = Tpm::xlearner();
        model.fit(&train, &mut rng).unwrap();
        let path = tmp("tpm");
        model.save(&path).unwrap();
        let loaded = Tpm::load(&path).unwrap();
        assert_eq!(loaded.label(), "XL");
        assert_eq!(loaded.n_features(), Some(test.x.cols()));
        assert_eq!(model.predict_roi(&test.x), loaded.predict_roi(&test.x));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn direct_rank_roundtrips_with_identical_predictions() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(4);
        let train = gen.sample(1200, Population::Base, &mut rng);
        let test = gen.sample(100, Population::Base, &mut rng);
        let mut model = DirectRank::new(uplift::NetConfig {
            epochs: 4,
            ..uplift::NetConfig::default()
        });
        model.fit(&train, &mut rng).unwrap();
        let path = tmp("dr");
        model.save(&path).unwrap();
        let loaded = DirectRank::load(&path).unwrap();
        assert_eq!(model.predict_roi(&test.x), loaded.predict_roi(&test.x));
        let _ = std::fs::remove_file(path);
    }
}
