//! Algorithm 1: the greedy C-BTAP solver.
//!
//! C-BTAP is a 0/1 knapsack (NP-hard); the paper's Algorithm 1 sorts
//! individuals by predicted ROI and treats them greedily until the budget
//! is exhausted, with approximation ratio `ρ ≥ 1 − max_i τ(x_i)/OPT`.

use linalg::vector::argsort_desc;

/// The result of a greedy allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Treatment decision per individual (aligned with the input order).
    pub treated: Vec<bool>,
    /// Total expected incremental cost of the treated set.
    pub spent: f64,
    /// Number of treated individuals.
    pub n_treated: usize,
}

/// Greedily assigns treatment in descending `scores` order, adding
/// individuals while their expected incremental `costs` fit in `budget`.
/// Allocation stops at the first individual that would overflow the
/// budget — exactly the paper's "allocate until the budget B is reached".
///
/// # Panics
/// Panics on length mismatch, a negative budget, or any non-positive cost
/// (Assumption 4: `τ^c > 0`; zero-cost items would make the greedy rule
/// ill-defined).
pub fn greedy_allocate(scores: &[f64], costs: &[f64], budget: f64) -> Allocation {
    assert_eq!(
        scores.len(),
        costs.len(),
        "greedy_allocate: scores/costs length mismatch"
    );
    assert!(budget >= 0.0, "greedy_allocate: negative budget");
    assert!(
        costs.iter().all(|&c| c > 0.0),
        "greedy_allocate: costs must be positive (Assumption 4)"
    );
    let mut treated = vec![false; scores.len()];
    let mut spent = 0.0;
    let mut n_treated = 0usize;
    for &i in &argsort_desc(scores) {
        if spent + costs[i] > budget {
            break;
        }
        treated[i] = true;
        spent += costs[i];
        n_treated += 1;
    }
    Allocation {
        treated,
        spent,
        n_treated,
    }
}

/// Total value captured by an allocation under per-individual `values`
/// (e.g. ground-truth revenue uplift in the A/B simulator).
///
/// # Panics
/// Panics on length mismatch.
pub fn allocation_value(allocation: &Allocation, values: &[f64]) -> f64 {
    assert_eq!(
        allocation.treated.len(),
        values.len(),
        "allocation_value: length mismatch"
    );
    allocation
        .treated
        .iter()
        .zip(values)
        .filter(|(&t, _)| t)
        .map(|(_, &v)| v)
        .sum()
}

/// Exact 0/1-knapsack solution of the C-BTAP objective (Eq. 1) by dynamic
/// programming over a discretized cost axis, for *validating Algorithm
/// 1's approximation ratio* on small instances.
///
/// Costs are discretized into `resolution` budget ticks; the answer is
/// exact for the discretized instance and within one tick's value of the
/// true optimum. Runtime is `O(n · resolution)` — use on small `n` only
/// (the experiments validate greedy with `n ≤ 200`, `resolution = 2000`).
///
/// # Panics
/// Panics on length mismatch, non-positive costs, negative budget, or
/// `resolution < 2`.
pub fn optimal_allocate_dp(
    values: &[f64],
    costs: &[f64],
    budget: f64,
    resolution: usize,
) -> Allocation {
    assert_eq!(
        values.len(),
        costs.len(),
        "optimal_allocate_dp: length mismatch"
    );
    assert!(budget >= 0.0, "optimal_allocate_dp: negative budget");
    assert!(resolution >= 2, "optimal_allocate_dp: resolution too small");
    assert!(
        costs.iter().all(|&c| c > 0.0),
        "optimal_allocate_dp: costs must be positive"
    );
    let n = values.len();
    if n == 0 || budget == 0.0 {
        return Allocation {
            treated: vec![false; n],
            spent: 0.0,
            n_treated: 0,
        };
    }
    let tick = budget / resolution as f64;
    // Integer cost per item (rounded up: never overspend).
    let icost: Vec<usize> = costs.iter().map(|&c| (c / tick).ceil() as usize).collect();
    // dp[b] = best value using budget b; keep[i][b] = take item i at b?
    let mut dp = vec![0.0f64; resolution + 1];
    let mut keep = vec![vec![false; resolution + 1]; n];
    for i in 0..n {
        let ci = icost[i];
        if ci > resolution {
            continue;
        }
        for b in (ci..=resolution).rev() {
            let candidate = dp[b - ci] + values[i];
            if candidate > dp[b] {
                dp[b] = candidate;
                keep[i][b] = true;
            }
        }
    }
    // Trace back.
    let mut treated = vec![false; n];
    let mut b = resolution;
    let mut spent = 0.0;
    let mut n_treated = 0usize;
    for i in (0..n).rev() {
        if keep[i][b] {
            treated[i] = true;
            spent += costs[i];
            n_treated += 1;
            b -= icost[i];
        }
    }
    Allocation {
        treated,
        spent,
        n_treated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treats_highest_scores_first() {
        let scores = [0.1, 0.9, 0.5];
        let costs = [1.0, 1.0, 1.0];
        let a = greedy_allocate(&scores, &costs, 2.0);
        assert_eq!(a.treated, vec![false, true, true]);
        assert_eq!(a.n_treated, 2);
        assert_eq!(a.spent, 2.0);
    }

    #[test]
    fn never_exceeds_budget() {
        let scores = [0.9, 0.8, 0.7];
        let costs = [1.5, 1.5, 1.5];
        let a = greedy_allocate(&scores, &costs, 2.0);
        assert!(a.spent <= 2.0);
        assert_eq!(a.n_treated, 1);
    }

    #[test]
    fn stops_at_first_overflow() {
        // The second-best item overflows; per Algorithm 1 we stop rather
        // than skip to the cheaper third item.
        let scores = [0.9, 0.8, 0.7];
        let costs = [1.0, 5.0, 0.5];
        let a = greedy_allocate(&scores, &costs, 2.0);
        assert_eq!(a.treated, vec![true, false, false]);
    }

    #[test]
    fn zero_budget_treats_nobody() {
        let a = greedy_allocate(&[0.5, 0.6], &[1.0, 1.0], 0.0);
        assert_eq!(a.n_treated, 0);
        assert_eq!(a.spent, 0.0);
    }

    #[test]
    fn value_accounting() {
        let a = Allocation {
            treated: vec![true, false, true],
            spent: 2.0,
            n_treated: 2,
        };
        assert_eq!(allocation_value(&a, &[1.0, 10.0, 2.0]), 3.0);
    }

    #[test]
    fn greedy_matches_optimum_on_uniform_costs() {
        // With unit costs, greedy-by-score IS optimal for value-by-score.
        let scores = [0.3, 0.9, 0.1, 0.7, 0.5];
        let costs = [1.0; 5];
        let a = greedy_allocate(&scores, &costs, 3.0);
        let mut chosen: Vec<usize> = (0..5).filter(|&i| a.treated[i]).collect();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "costs must be positive")]
    fn zero_cost_panics() {
        let _ = greedy_allocate(&[0.5], &[0.0], 1.0);
    }

    #[test]
    fn dp_solves_textbook_knapsack() {
        // values/costs chosen so greedy-by-ratio is suboptimal:
        // items: (v=6,c=5), (v=4,c=4), (v=4,c=4); budget 8.
        // Ratios: 1.2, 1.0, 1.0 — greedy takes item 0 (spend 5), nothing
        // else fits under stop-at-overflow (next cost 4 > 3). DP takes
        // items 1+2 for value 8.
        let values = [6.0, 4.0, 4.0];
        let costs = [5.0, 4.0, 4.0];
        let rois = [1.2, 1.0, 1.0];
        let greedy = greedy_allocate(&rois, &costs, 8.0);
        let greedy_value = allocation_value(&greedy, &values);
        let dp = optimal_allocate_dp(&values, &costs, 8.0, 800);
        let dp_value = allocation_value(&dp, &values);
        assert_eq!(greedy_value, 6.0);
        assert_eq!(dp_value, 8.0);
        assert!(dp.spent <= 8.0);
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        let mut rng = linalg::random::Prng::seed_from_u64(0);
        for _ in 0..20 {
            let n = 40;
            let values: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.1, 1.0)).collect();
            let costs: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.1, 1.0)).collect();
            let rois: Vec<f64> = values.iter().zip(&costs).map(|(v, c)| v / c).collect();
            let budget = 0.3 * costs.iter().sum::<f64>();
            let greedy = greedy_allocate(&rois, &costs, budget);
            let dp = optimal_allocate_dp(&values, &costs, budget, 2000);
            let gv = allocation_value(&greedy, &values);
            let dv = allocation_value(&dp, &values);
            // One discretization tick of slack.
            assert!(dv >= gv - 1e-6, "dp {dv} < greedy {gv}");
            assert!(dp.spent <= budget + 1e-9);
        }
    }

    #[test]
    fn greedy_approximation_ratio_bound_holds() {
        // rho >= 1 - max_i tau_r(x_i) / OPT (paper §III-B).
        let mut rng = linalg::random::Prng::seed_from_u64(1);
        for trial in 0..10 {
            let n = 60;
            let values: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.05, 0.5)).collect();
            let costs: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.05, 0.5)).collect();
            let rois: Vec<f64> = values.iter().zip(&costs).map(|(v, c)| v / c).collect();
            let budget = 0.4 * costs.iter().sum::<f64>();
            let greedy_value = allocation_value(&greedy_allocate(&rois, &costs, budget), &values);
            let opt =
                allocation_value(&optimal_allocate_dp(&values, &costs, budget, 4000), &values);
            let max_v = values.iter().cloned().fold(0.0, f64::max);
            let bound = 1.0 - max_v / opt.max(1e-12);
            assert!(
                greedy_value / opt.max(1e-12) >= bound - 0.02,
                "trial {trial}: ratio {} below bound {bound}",
                greedy_value / opt
            );
        }
    }

    #[test]
    fn dp_zero_budget_or_empty() {
        let a = optimal_allocate_dp(&[1.0], &[1.0], 0.0, 10);
        assert_eq!(a.n_treated, 0);
        let b = optimal_allocate_dp(&[], &[], 5.0, 10);
        assert_eq!(b.n_treated, 0);
    }
}
