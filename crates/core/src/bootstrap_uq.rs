//! Bootstrap-ensemble uncertainty for DRP — the baseline rDRP avoids.
//!
//! §IV-C2 of the paper: "std generation commonly involves ensemble
//! methods ... but these require retraining multiple models, which is
//! inefficient. To circumvent these issues, we suggest using the Monte
//! Carlo dropout method." This module implements the ensemble route so
//! the claim is measurable: `B` DRP models are trained on bootstrap
//! resamples; the prediction spread across the ensemble is the
//! uncertainty scalar. The `ablations` bench binary compares its cost and
//! std quality against MC dropout.

use crate::config::DrpConfig;
use crate::drp::DrpModel;
use datasets::RctDataset;
use linalg::random::Prng;
use linalg::Matrix;
use nn::McStats;
use obs::Obs;
use uplift::error::check_both_groups;
use uplift::FitError;

/// A bootstrap ensemble of DRP models.
#[derive(Debug, Clone)]
pub struct BootstrapDrp {
    config: DrpConfig,
    n_models: usize,
    models: Vec<DrpModel>,
}

tinyjson::json_struct!(BootstrapDrp {
    config,
    n_models,
    models
});

impl BootstrapDrp {
    /// Creates an unfitted ensemble of `n_models` DRP replicas.
    ///
    /// # Panics
    /// Panics when `n_models` is 0.
    pub fn new(config: DrpConfig, n_models: usize) -> Self {
        assert!(n_models > 0, "BootstrapDrp: need at least one model");
        BootstrapDrp {
            config,
            n_models,
            models: Vec::new(),
        }
    }

    /// Trains every replica on an independent bootstrap resample. This is
    /// the `B × train-time` cost the paper's complexity argument is about.
    ///
    /// # Errors
    /// Returns [`FitError`] when the data is empty or single-group (the
    /// resample-until-both-groups loop below would otherwise never
    /// terminate), or when any replica's training fails.
    pub fn fit(&mut self, data: &RctDataset, rng: &mut Prng) -> Result<(), FitError> {
        if data.is_empty() {
            return Err(FitError::InvalidData(
                "BootstrapDrp: empty dataset".to_string(),
            ));
        }
        check_both_groups("BootstrapDrp", &data.t)?;
        self.models.clear();
        for _ in 0..self.n_models {
            // Resample until both groups are present (cheap for RCT data;
            // guaranteed to terminate by the check above).
            let rows = loop {
                let rows = rng.sample_with_replacement(data.len(), data.len());
                let treated = rows.iter().filter(|&&i| data.t[i] == 1).count();
                if treated > 0 && treated < rows.len() {
                    break rows;
                }
            };
            let resampled = data.subset(&rows);
            let mut model = DrpModel::new(self.config.clone());
            model.fit(&resampled, rng, &Obs::disabled())?;
            self.models.push(model);
        }
        Ok(())
    }

    /// Number of fitted replicas.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the ensemble is unfitted.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Feature dimension the fitted ensemble consumes, or `None` before
    /// fitting.
    pub fn n_features(&self) -> Option<usize> {
        self.models.first().and_then(DrpModel::n_features)
    }

    /// Per-sample mean and std of the ROI prediction across the ensemble
    /// — the bootstrap analogue of [`DrpModel::mc_roi`].
    ///
    /// # Panics
    /// Panics before [`BootstrapDrp::fit`].
    pub fn ensemble_roi(&self, x: &Matrix, std_floor: f64) -> McStats {
        assert!(!self.models.is_empty(), "BootstrapDrp: fit before predict");
        let all: Vec<Vec<f64>> = self
            .models
            .iter()
            .map(|m| m.predict_roi(x, &Obs::disabled()))
            .collect();
        Self::stats_from_member_preds(x.rows(), &all, std_floor)
    }

    /// Per-sample mean/std over one prediction vector per replica.
    fn stats_from_member_preds(n: usize, all: &[Vec<f64>], std_floor: f64) -> McStats {
        let inv = 1.0 / all.len() as f64;
        let mut mean = vec![0.0; n];
        for preds in all {
            for (m, &v) in mean.iter_mut().zip(preds) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m *= inv;
        }
        let mut var = vec![0.0; n];
        for preds in all {
            for ((s, &v), &m) in var.iter_mut().zip(preds).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| (v * inv).sqrt().max(std_floor))
            .collect();
        McStats {
            mean,
            std,
            passes: all.len(),
        }
    }

    /// [`BootstrapDrp::ensemble_roi`] with every replica scored through
    /// the columnar f32 kernel path ([`DrpModel::predict_roi_block`]).
    /// Matches the scalar path to f32 rounding, not bitwise — see
    /// DESIGN.md §11.
    ///
    /// # Panics
    /// Panics before [`BootstrapDrp::fit`].
    pub fn ensemble_roi_block(&self, x: &Matrix, std_floor: f64) -> McStats {
        assert!(!self.models.is_empty(), "BootstrapDrp: fit before predict");
        let all: Vec<Vec<f64>> = self
            .models
            .iter()
            .map(|m| m.predict_roi_block(x, &Obs::disabled()))
            .collect();
        Self::stats_from_member_preds(x.rows(), &all, std_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;

    fn quick_config() -> DrpConfig {
        DrpConfig {
            epochs: 6,
            ..DrpConfig::default()
        }
    }

    #[test]
    fn ensemble_produces_mean_and_positive_std() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(2000, Population::Base, &mut rng);
        let test = gen.sample(300, Population::Base, &mut rng);
        let mut ens = BootstrapDrp::new(quick_config(), 5);
        ens.fit(&train, &mut rng).unwrap();
        assert_eq!(ens.len(), 5);
        let stats = ens.ensemble_roi(&test.x, 1e-9);
        assert_eq!(stats.mean.len(), 300);
        assert_eq!(stats.passes, 5);
        assert!(stats.mean.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(stats.std.iter().any(|&s| s > 1e-4));
    }

    #[test]
    fn single_model_ensemble_has_floor_std() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(1);
        let train = gen.sample(1000, Population::Base, &mut rng);
        let mut ens = BootstrapDrp::new(quick_config(), 1);
        ens.fit(&train, &mut rng).unwrap();
        let stats = ens.ensemble_roi(&train.x, 1e-6);
        assert!(stats.std.iter().all(|&s| s == 1e-6));
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        let ens = BootstrapDrp::new(quick_config(), 3);
        let _ = ens.ensemble_roi(&Matrix::zeros(1, 12), 1e-9);
    }

    #[test]
    fn single_group_data_is_a_typed_error_not_a_hang() {
        // Regression: the resample loop used to spin forever on
        // single-group data because no resample could contain both arms.
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(2);
        let mut train = gen.sample(200, Population::Base, &mut rng);
        train.t = vec![1; train.len()];
        let mut ens = BootstrapDrp::new(quick_config(), 2);
        let err = ens.fit(&train, &mut rng).unwrap_err();
        assert!(matches!(err, uplift::FitError::InvalidData(_)));
    }
}
