//! Heuristic point-estimate calibration with interval information
//! (paper Eq. 5a–5c, inspired by the M4 competition's interval
//! aggregation methods).
//!
//! Given the DRP point estimate `r̂oi`, the MC std `r̂(x)`, and the
//! conformal quantile `q̂`, each form produces a re-ranked score:
//!
//! * **5a** `r̂oi · (r̂oi + r̂(x)q̂)` — point estimate weighted by its own
//!   interval upper bound,
//! * **5b** `r̂oi / (r̂(x)q̂)` — point estimate discounted by interval
//!   width (penalizes uncertain predictions),
//! * **5c** `r̂oi + r̂(x)q̂` — the interval upper bound (optimism under
//!   uncertainty).
//!
//! Algorithm 4 line 8: the form is *selected on the calibration set* by
//! AUCC, so the choice adapts to whichever failure mode (covariate shift
//! vs undertraining) the deployment data exhibits.

/// How a fitted rDRP degraded when its calibration inputs were unusable.
///
/// Degradation is a *warning*, not an error: the model still serves
/// finite, usable scores — it just falls down the ladder
/// `rDRP → plain DRP ranking` and records why, so operators (and the
/// CLI) can surface the condition instead of silently shipping an
/// uncalibrated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Algorithm 2 could not find `roi*` on the calibration labels
    /// (missing treatment group or non-positive mean cost uplift).
    DegenerateLabels,
    /// The calibration-set MC-dropout stds were near-constant, so the
    /// conformal score carries no per-individual information and every
    /// Eq. 5 form collapses to a monotone transform of the point
    /// estimate.
    DegenerateUncertainty,
    /// An online recalibration was requested before the feedback window
    /// held enough scores for a meaningful quantile; the previous
    /// artifact keeps serving unchanged.
    InsufficientWindow,
}

tinyjson::json_unit_enum!(DegradedMode {
    DegenerateLabels,
    DegenerateUncertainty,
    InsufficientWindow
});

impl DegradedMode {
    /// The variant name — the stable identifier trace events carry, and
    /// the same string the `json_unit_enum!` serialization uses.
    pub fn label(self) -> &'static str {
        match self {
            DegradedMode::DegenerateLabels => "DegenerateLabels",
            DegradedMode::DegenerateUncertainty => "DegenerateUncertainty",
            DegradedMode::InsufficientWindow => "InsufficientWindow",
        }
    }

    /// Human-readable explanation for warnings.
    pub fn reason(self) -> &'static str {
        match self {
            DegradedMode::DegenerateLabels => {
                "roi* search failed on the calibration labels; serving plain DRP ranking"
            }
            DegradedMode::DegenerateUncertainty => {
                "calibration MC-dropout std is near-constant; serving plain DRP ranking"
            }
            DegradedMode::InsufficientWindow => {
                "online feedback window too small to recalibrate; keeping current artifact"
            }
        }
    }
}

impl std::fmt::Display for DegradedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

/// One of the paper's calibration forms, plus the identity for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationForm {
    /// No calibration: the raw DRP point estimate (ablation baseline).
    Identity,
    /// Eq. (5a): `r̂oi (r̂oi + r̂ q̂)`.
    WeightedUpperBound,
    /// Eq. (5b): `r̂oi / (r̂ q̂)`.
    InverseWidth,
    /// Eq. (5c): `r̂oi + r̂ q̂`.
    UpperBound,
}

tinyjson::json_unit_enum!(CalibrationForm {
    Identity,
    WeightedUpperBound,
    InverseWidth,
    UpperBound
});

impl CalibrationForm {
    /// The candidate forms Algorithm 4 selects among (Eq. 5a–5c).
    pub const CANDIDATES: [CalibrationForm; 3] = [
        CalibrationForm::WeightedUpperBound,
        CalibrationForm::InverseWidth,
        CalibrationForm::UpperBound,
    ];

    /// Applies the form to one sample. `half_width = r̂(x)·q̂` is the
    /// conformal interval's half width, floored at `width_floor` where a
    /// division needs it.
    pub fn apply(self, roi_hat: f64, half_width: f64, width_floor: f64) -> f64 {
        debug_assert!(width_floor > 0.0);
        match self {
            CalibrationForm::Identity => roi_hat,
            CalibrationForm::WeightedUpperBound => roi_hat * (roi_hat + half_width),
            CalibrationForm::InverseWidth => roi_hat / half_width.max(width_floor),
            CalibrationForm::UpperBound => roi_hat + half_width,
        }
    }

    /// Vectorized [`CalibrationForm::apply`].
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn apply_all(self, roi_hat: &[f64], half_widths: &[f64], width_floor: f64) -> Vec<f64> {
        assert_eq!(
            roi_hat.len(),
            half_widths.len(),
            "CalibrationForm: length mismatch"
        );
        roi_hat
            .iter()
            .zip(half_widths)
            .map(|(&r, &w)| self.apply(r, w, width_floor))
            .collect()
    }

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            CalibrationForm::Identity => "identity",
            CalibrationForm::WeightedUpperBound => "5a: roi*(roi+rq)",
            CalibrationForm::InverseWidth => "5b: roi/(rq)",
            CalibrationForm::UpperBound => "5c: roi+rq",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forms_match_equations() {
        let (roi, hw) = (0.4, 0.1);
        assert_eq!(
            CalibrationForm::WeightedUpperBound.apply(roi, hw, 1e-9),
            0.4 * 0.5
        );
        assert_eq!(CalibrationForm::InverseWidth.apply(roi, hw, 1e-9), 4.0);
        assert!((CalibrationForm::UpperBound.apply(roi, hw, 1e-9) - 0.5).abs() < 1e-15);
        assert_eq!(CalibrationForm::Identity.apply(roi, hw, 1e-9), roi);
    }

    #[test]
    fn inverse_width_is_floored() {
        let v = CalibrationForm::InverseWidth.apply(0.5, 0.0, 1e-3);
        assert_eq!(v, 500.0);
    }

    #[test]
    fn equal_widths_preserve_ranking() {
        // With identical half widths, every form is monotone in roi_hat,
        // so rankings are unchanged.
        let rois = [0.1, 0.5, 0.3, 0.9];
        let hw = [0.2; 4];
        for form in CalibrationForm::CANDIDATES {
            let out = form.apply_all(&rois, &hw, 1e-9);
            let order_in = linalg::vector::argsort_desc(&rois);
            let order_out = linalg::vector::argsort_desc(&out);
            assert_eq!(order_in, order_out, "{}", form.label());
        }
    }

    #[test]
    fn upper_bound_promotes_uncertain_points() {
        // 5c ranks a low-estimate/high-uncertainty point above a
        // high-estimate/certain point when the widths dominate.
        let rois = [0.5, 0.4];
        let hw = [0.0, 0.3];
        let out = CalibrationForm::UpperBound.apply_all(&rois, &hw, 1e-9);
        assert!(out[1] > out[0]);
        // 5b does the opposite: penalizes width.
        let out = CalibrationForm::InverseWidth.apply_all(&rois, &hw, 1e-3);
        assert!(out[0] > out[1]);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = CalibrationForm::CANDIDATES
            .iter()
            .map(|f| f.label())
            .collect();
        labels.push(CalibrationForm::Identity.label());
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
