//! Algorithm 4: the robust DRP pipeline.
//!
//! ```text
//! 1. Train DRP on the training set.
//! 2. On the calibration set (a fresh pre-deployment RCT):
//!      (i)   infer DRP point estimates r̂oi,
//!      (ii)  find roi* by binary search (Algorithm 2),
//!      (iii) infer MC-dropout stds r̂(x),
//!      (iv)  compute the conformal quantile q̂ (Algorithm 3),
//!      (v)   select the calibration form among Eq. 5a–5c by AUCC.
//! 3. On the test set: infer r̂oi and r̂(x), apply the selected form with
//!    q̂ to obtain the calibrated ranking scores.
//! ```

use crate::calibrate::{CalibrationForm, DegradedMode};
use crate::config::RdrpConfig;
use crate::drp::DrpModel;
use crate::error::PipelineError;
use crate::search::{find_roi_star, SearchError};
use conformal::{Interval, SplitConformal};
use datasets::RctDataset;
use linalg::random::Prng;
use linalg::Matrix;
use nn::Workspace;
use obs::Obs;
use uplift::{FitError, RoiModel};

/// What the calibration phase produced (inspectable diagnostics).
#[derive(Debug, Clone)]
pub struct RdrpDiagnostics {
    /// The convergence-point ROI from Algorithm 2 (`None` when the search
    /// failed and rDRP fell back to uncalibrated DRP).
    pub roi_star: Option<f64>,
    /// The conformal score quantile `q̂`.
    pub qhat: f64,
    /// The calibration form selected on the calibration set.
    pub selected_form: CalibrationForm,
    /// Mean paired-bootstrap AUCC improvement over the uncalibrated
    /// point estimate for each candidate form `(form, mean_improvement)`,
    /// in candidate order (empty when the search fell back).
    pub form_auccs: Vec<(CalibrationForm, f64)>,
    /// Calibration-set size.
    pub n_calibration: usize,
    /// Set when the pipeline could not calibrate and degraded to plain
    /// DRP ranking (a warning, not an error — scores stay usable).
    pub degraded: Option<DegradedMode>,
}

tinyjson::json_struct!(RdrpDiagnostics {
    roi_star,
    qhat,
    selected_form,
    form_auccs,
    n_calibration,
    degraded
});

/// The fixed RNG seed deterministic scoring paths use for their
/// MC-dropout passes: [`RoiModel::predict_roi`] on a fitted [`Rdrp`], the
/// CLI `score`/`serve` subcommands, and the serving engine. Scoring a
/// fitted model must be a pure function of the inputs, so every replay
/// path seeds from this constant.
pub const SCORING_SEED: u64 = 0x5C0BE;

/// Bootstrap resamples used by the form-selection significance test.
const SELECTION_BOOTSTRAPS: usize = 16;
/// One-sided t-statistic threshold a form must clear to replace the
/// uncalibrated point estimate. Deliberately strict: the bootstrap only
/// measures resampling variance, not the calibration sample's own bias,
/// so adopting a form on weak evidence risks degrading deployment — the
/// opposite of "robust".
const SELECTION_T_THRESHOLD: f64 = 2.5;
/// Minimum mean paired AUCC improvement a form must show besides
/// statistical significance.
const SELECTION_MIN_GAIN: f64 = 0.005;
/// Percentile bins used for calibration-set AUCC during selection.
const SELECTION_AUCC_BINS: usize = 20;

/// Paired-bootstrap form selection with split confirmation (Algorithm 4
/// line 8, with sampling noise accounted for).
///
/// Two noise sources threaten the selection: *resampling variance*
/// (handled by the paired bootstrap's t-test on one half of the
/// calibration set) and the *label-realization noise of the calibration
/// sample itself*, which the bootstrap cannot see — a form can look
/// consistently better on one particular sample and be worthless on the
/// population. The held-out half guards against the latter: a form is
/// adopted only if it also improves on calibration data it was not
/// selected on. Returns the selected form and each candidate's mean
/// paired AUCC improvement on the selection half.
fn select_form_bootstrap(
    calibration: &RctDataset,
    preds: &[f64],
    half_widths: &[f64],
    width_floor: f64,
    bootstraps: usize,
    rng: &mut Prng,
) -> (CalibrationForm, Vec<(CalibrationForm, f64)>) {
    let forms = CalibrationForm::CANDIDATES;
    // A split + paired bootstrap needs at least two points on each half;
    // smaller calibration sets carry no ranking signal (and an empty
    // selection half would panic inside the bootstrap resampler). Decline
    // to calibrate and keep the raw point estimate.
    if calibration.len() < 4 {
        return (CalibrationForm::Identity, Vec::new());
    }
    // Split the calibration set into a selection half and a confirm half.
    let order = rng.permutation(calibration.len());
    let mid = calibration.len() / 2;
    let select_idx = &order[..mid];
    let confirm_idx = &order[mid..];
    let confirm = calibration.subset(confirm_idx);

    let mut diffs: Vec<Vec<f64>> = vec![Vec::with_capacity(bootstraps); forms.len()];
    for _ in 0..bootstraps {
        let pick = rng.sample_with_replacement(select_idx.len(), select_idx.len());
        let idx: Vec<usize> = pick.iter().map(|&k| select_idx[k]).collect();
        let sub = calibration.subset(&idx);
        let id_scores: Vec<f64> = idx.iter().map(|&i| preds[i]).collect();
        // Degenerate resamples (missing group / non-positive uplift
        // totals) carry no ranking information; skip the whole draw.
        let Some(a_id) = metrics::aucc_checked(&sub, &id_scores, SELECTION_AUCC_BINS) else {
            continue;
        };
        for (fi, form) in forms.iter().enumerate() {
            let scores: Vec<f64> = idx
                .iter()
                .map(|&i| form.apply(preds[i], half_widths[i], width_floor))
                .collect();
            if let Some(a) = metrics::aucc_checked(&sub, &scores, SELECTION_AUCC_BINS) {
                diffs[fi].push(a - a_id);
            }
        }
    }
    // Confirm-half identity baseline.
    let confirm_id: Vec<f64> = confirm_idx.iter().map(|&i| preds[i]).collect();
    let confirm_base = metrics::aucc_checked(&confirm, &confirm_id, SELECTION_AUCC_BINS);

    let mut best = CalibrationForm::Identity;
    let mut best_t = 0.0f64;
    let mut report = Vec::with_capacity(forms.len());
    for (fi, form) in forms.iter().enumerate() {
        if diffs[fi].len() < 2 {
            report.push((*form, 0.0));
            continue;
        }
        let mean = linalg::stats::mean(&diffs[fi]);
        let se = linalg::stats::sample_std_dev(&diffs[fi]) / (diffs[fi].len() as f64).sqrt();
        let t = if se > 0.0 { mean / se } else { 0.0 };
        report.push((*form, mean));
        if mean > SELECTION_MIN_GAIN && t > SELECTION_T_THRESHOLD && t > best_t {
            // Held-out confirmation against the sample's own label noise.
            let confirmed = match confirm_base {
                Some(base) => {
                    let scores: Vec<f64> = confirm_idx
                        .iter()
                        .map(|&i| form.apply(preds[i], half_widths[i], width_floor))
                        .collect();
                    metrics::aucc_checked(&confirm, &scores, SELECTION_AUCC_BINS)
                        .is_some_and(|a| a > base + SELECTION_MIN_GAIN)
                }
                None => false,
            };
            if confirmed {
                best = *form;
                best_t = t;
            }
        }
    }
    (best, report)
}

/// The robust DRP model.
#[derive(Debug, Clone)]
pub struct Rdrp {
    config: RdrpConfig,
    drp: DrpModel,
    state: Option<Calibrated>,
    /// Internal calibration fraction used by the [`RoiModel::fit`]
    /// convenience path (which has no separate calibration set).
    internal_calib_fraction: f64,
}

tinyjson::json_struct!(Rdrp {
    config,
    drp,
    state,
    internal_calib_fraction
});

#[derive(Debug, Clone)]
struct Calibrated {
    conformal: SplitConformal,
    form: CalibrationForm,
    diagnostics: RdrpDiagnostics,
}

tinyjson::json_struct!(Calibrated {
    conformal,
    form,
    diagnostics
});

impl Rdrp {
    /// Creates an unfitted rDRP model.
    ///
    /// # Errors
    /// Returns [`PipelineError::Config`] when the configuration is
    /// invalid (e.g. `alpha` outside (0, 1)).
    pub fn new(config: RdrpConfig) -> Result<Self, PipelineError> {
        if let Some(problem) = config.validate() {
            return Err(PipelineError::Config(problem));
        }
        let drp = DrpModel::new(config.drp.clone());
        Ok(Rdrp {
            config,
            drp,
            state: None,
            internal_calib_fraction: 0.2,
        })
    }

    /// The underlying (trained) DRP model.
    pub fn drp(&self) -> &DrpModel {
        &self.drp
    }

    /// Calibration diagnostics.
    ///
    /// # Panics
    /// Panics before fitting.
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn diagnostics(&self) -> &RdrpDiagnostics {
        &self
            .state
            .as_ref()
            .expect("Rdrp: fit before reading diagnostics")
            .diagnostics
    }

    /// Whether (and how) the last fit degraded to plain DRP ranking.
    /// `None` before fitting or when calibration succeeded.
    pub fn degraded(&self) -> Option<DegradedMode> {
        self.state.as_ref().and_then(|s| s.diagnostics.degraded)
    }

    /// The full Algorithm 4: trains DRP on `train` and calibrates the
    /// conformal interval + form selection on `calibration` (the fresh
    /// pre-deployment RCT whose distribution matches the test population,
    /// Assumption 6).
    ///
    /// Degenerate calibration inputs do **not** fail the fit: when the
    /// `roi*` search cannot run on the calibration labels, or when the
    /// MC-dropout uncertainty is near-constant across the calibration
    /// set (so the conformal score carries no ranking information), the
    /// model degrades to plain DRP ranking and records why in
    /// [`RdrpDiagnostics::degraded`].
    ///
    /// The `obs` handle records every run-level decision the diagnostics
    /// summarize (pass [`Obs::disabled`] for a silent run):
    ///
    /// * the trainer's `train.*` vocabulary (via [`nn::train`]);
    /// * `infer.*` batch/MC histograms for the calibration-set inference;
    /// * counter `calibration.std_floor_hits` — how many calibration rows
    ///   had their MC-dropout std clamped at `std_floor`;
    /// * event `calibration.roi_star` `{roi_star, iterations, lo, hi}`
    ///   from Algorithm 2's bisection (exactly once on a non-degraded
    ///   run);
    /// * event `calibration.qhat` `{qhat, n_calibration, alpha}` once the
    ///   conformal quantile exists;
    /// * event `calibration.form_selected` `{form}` on full success, or
    /// * event `calibration.degraded` `{mode}` (exactly once) when the
    ///   pipeline fell back to plain DRP ranking — `mode` is the
    ///   [`DegradedMode`] variant name.
    ///
    /// # Errors
    /// Returns [`FitError`] when the training data is malformed, DRP
    /// training diverges beyond its retry budget, or conformal
    /// calibration itself fails.
    pub fn fit_with_calibration(
        &mut self,
        train: &RctDataset,
        calibration: &RctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError> {
        if calibration.is_empty() {
            return Err(FitError::InvalidData(
                "rDRP: empty calibration set".to_string(),
            ));
        }
        uplift::error::check_xty(
            "rDRP calibration",
            &calibration.x,
            &calibration.t,
            &calibration.y_r,
        )?;
        uplift::error::check_xty(
            "rDRP calibration",
            &calibration.x,
            &calibration.t,
            &calibration.y_c,
        )?;
        // Step 1: train DRP.
        self.drp.fit(train, rng, obs)?;
        // Step 2 on the calibration set.
        let preds = self.drp.predict_roi(&calibration.x, obs);
        let mc = self.drp.mc_roi_with_rate(
            &calibration.x,
            self.config.mc_passes,
            self.config.mc_dropout,
            self.config.std_floor,
            rng,
            obs,
        );
        // `mc_predict_map` clamps each std at the floor, so a floored row
        // is exactly equal to it.
        let floor_hits = mc
            .std
            .iter()
            .filter(|&&s| s <= self.config.std_floor)
            .count();
        if floor_hits > 0 {
            obs.counter("calibration.std_floor_hits", floor_hits as f64);
        }
        let roi_star = match find_roi_star(
            &calibration.t,
            &calibration.y_r,
            &calibration.y_c,
            self.config.search_eps,
            obs,
        ) {
            Ok(v) => v,
            Err(SearchError::MissingGroup | SearchError::NonPositiveCostUplift { .. }) => {
                // Degenerate calibration sample: fall back to plain DRP
                // (q̂ = 0 makes every form reduce to a monotone transform
                // of the point estimate — Identity keeps it exact).
                // A q̂ = 0 conformal object keeps predict_intervals usable.
                obs.event(
                    "calibration.degraded",
                    &[("mode", DegradedMode::DegenerateLabels.label().into())],
                );
                self.state = Some(Calibrated {
                    conformal: SplitConformal::from_quantile(
                        0.0,
                        self.config.alpha,
                        calibration.len(),
                        self.config.std_floor,
                    ),
                    form: CalibrationForm::Identity,
                    diagnostics: RdrpDiagnostics {
                        roi_star: None,
                        qhat: 0.0,
                        selected_form: CalibrationForm::Identity,
                        form_auccs: Vec::new(),
                        n_calibration: calibration.len(),
                        degraded: Some(DegradedMode::DegenerateLabels),
                    },
                });
                return Ok(());
            }
            // The tolerance is config-validated, but keep the error typed
            // rather than unreachable!() — a future config path may skip
            // validation.
            Err(e @ SearchError::InvalidTolerance { .. }) => {
                return Err(FitError::Calibration(e.to_string()));
            }
        };
        let truths = vec![roi_star; calibration.len()];
        let conformal = SplitConformal::calibrate(
            &truths,
            &preds,
            &mc.std,
            self.config.alpha,
            self.config.std_floor,
        )
        .map_err(|e| FitError::Calibration(e.to_string()))?;
        obs.event(
            "calibration.qhat",
            &[
                ("qhat", conformal.qhat().into()),
                ("n_calibration", calibration.len().into()),
                ("alpha", self.config.alpha.into()),
            ],
        );
        // Degenerate-uncertainty guard: when the calibration-set MC stds
        // are (near-)constant — e.g. dropout disabled, or every pass
        // floored at `std_floor` — the conformal score `|roi* − r̂oi|/r̂`
        // is a monotone transform of the point estimate and the interval
        // widths carry no per-individual information. Form selection on
        // such scores is noise-chasing; degrade to plain DRP ranking and
        // say so.
        let spread = {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &s in &mc.std {
                lo = lo.min(s);
                hi = hi.max(s);
            }
            hi - lo
        };
        if spread <= self.config.std_degeneracy_eps {
            obs.event(
                "calibration.degraded",
                &[
                    ("mode", DegradedMode::DegenerateUncertainty.label().into()),
                    ("spread", spread.into()),
                ],
            );
            self.state = Some(Calibrated {
                form: CalibrationForm::Identity,
                diagnostics: RdrpDiagnostics {
                    roi_star: Some(roi_star),
                    qhat: conformal.qhat(),
                    selected_form: CalibrationForm::Identity,
                    form_auccs: Vec::new(),
                    n_calibration: calibration.len(),
                    degraded: Some(DegradedMode::DegenerateUncertainty),
                },
                conformal,
            });
            return Ok(());
        }
        // Step 2(v): select the form by calibration-set AUCC. Calibration
        // labels are noisy (AUCC on a few thousand RCT rows has sampling
        // error comparable to the form effects), so the selection is a
        // *paired bootstrap*: each resample of the calibration set scores
        // every form against the uncalibrated point estimate, and a form
        // is adopted only when its mean paired improvement is positive and
        // statistically significant. Otherwise rDRP declines to calibrate
        // — the "validate on the calibration set which form is best" step
        // of Algorithm 4, taken with the noise accounted for.
        let qhat = conformal.qhat();
        let half_widths: Vec<f64> = mc.std.iter().map(|&s| s * qhat).collect();
        let (selected, form_auccs) = select_form_bootstrap(
            calibration,
            &preds,
            &half_widths,
            self.config.std_floor,
            SELECTION_BOOTSTRAPS,
            rng,
        );
        obs.event(
            "calibration.form_selected",
            &[("form", selected.label().into())],
        );
        let diagnostics = RdrpDiagnostics {
            roi_star: Some(roi_star),
            qhat,
            selected_form: selected,
            form_auccs,
            n_calibration: calibration.len(),
            degraded: None,
        };
        self.state = Some(Calibrated {
            conformal,
            form: selected,
            diagnostics,
        });
        Ok(())
    }

    /// Conformal prediction intervals `C(x)` for test points, clipped to
    /// the ROI range (0, 1) (Assumption 3).
    ///
    /// # Panics
    /// Panics before fitting.
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn predict_intervals(&self, x: &Matrix, rng: &mut Prng) -> Vec<Interval> {
        let state = self.state.as_ref().expect("Rdrp: fit before predict");
        let obs = Obs::disabled();
        let preds = self.drp.predict_roi(x, &obs);
        let mc = self.drp.mc_roi_with_rate(
            x,
            self.config.mc_passes,
            self.config.mc_dropout,
            self.config.std_floor,
            rng,
            &obs,
        );
        state
            .conformal
            .intervals(&preds, &mc.std)
            .into_iter()
            .map(|iv| iv.clamp_to(0.0, 1.0))
            .collect()
    }

    /// Calibrated ranking scores on test points — Algorithm 4 line 12.
    ///
    /// Takes an explicit RNG so the MC-dropout passes are reproducible;
    /// [`RoiModel::predict_roi`] wraps this with the fixed
    /// [`SCORING_SEED`]. Batch-inference accounting goes through `obs`:
    /// the point-estimate pass records `infer.predict_*` and, when the
    /// selected form needs interval widths, the MC sweep records
    /// `infer.mc_*`.
    ///
    /// # Panics
    /// Panics before fitting.
    pub fn predict_scores(&self, x: &Matrix, rng: &mut Prng, obs: &Obs) -> Vec<f64> {
        let mut ws = Workspace::new();
        self.predict_scores_with(x, rng, &mut ws, obs)
    }

    /// [`Rdrp::predict_scores`] reusing a caller-owned [`Workspace`] for
    /// the serial point-estimate pass — the variant long-lived scorers
    /// (the serving engine's worker threads) call in a loop. The MC sweep
    /// (non-Identity forms only) manages its own per-worker scratch.
    ///
    /// # Panics
    /// Panics before fitting.
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn predict_scores_with(
        &self,
        x: &Matrix,
        rng: &mut Prng,
        ws: &mut Workspace,
        obs: &Obs,
    ) -> Vec<f64> {
        let state = self.state.as_ref().expect("Rdrp: fit before predict");
        let preds = self.drp.predict_roi_with(x, ws, obs);
        if state.form == CalibrationForm::Identity {
            return preds;
        }
        let mc = self.drp.mc_roi_with_rate(
            x,
            self.config.mc_passes,
            self.config.mc_dropout,
            self.config.std_floor,
            rng,
            obs,
        );
        let qhat = state.conformal.qhat();
        let half_widths: Vec<f64> = mc.std.iter().map(|&s| s * qhat).collect();
        state
            .form
            .apply_all(&preds, &half_widths, self.config.std_floor)
    }

    /// The calibration form a fitted model applies at scoring time, or
    /// `None` before fitting. [`CalibrationForm::Identity`] means scoring
    /// is a pure row-independent function of the features (no MC-dropout
    /// sweep) — the property the serving engine's batch coalescer keys on.
    pub fn selected_form(&self) -> Option<CalibrationForm> {
        self.state.as_ref().map(|s| s.form)
    }

    /// Feature dimension the fitted model consumes, or `None` before
    /// fitting.
    pub fn n_features(&self) -> Option<usize> {
        self.drp.n_features()
    }

    /// The fitted conformal quantile `q̂`, or `None` before fitting.
    pub fn qhat(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.conformal.qhat())
    }

    /// A copy of this fitted model with the conformal quantile replaced —
    /// the online-recalibration hot-swap path. Everything else (trained
    /// DRP, selected form, `α`, scale floor) is kept; the diagnostics
    /// record the new `q̂` and the feedback-window size that produced it.
    /// Returns `None` before fitting, and for non-finite negative inputs
    /// (an *infinite* `q̂` is legal — it is what a tiny window honestly
    /// yields — but a NaN or negative one is not a quantile).
    pub fn with_qhat(&self, qhat: f64, n_calibration: usize) -> Option<Rdrp> {
        if qhat.is_nan() || qhat < 0.0 {
            return None;
        }
        let state = self.state.as_ref()?;
        let mut swapped = self.clone();
        let conformal = SplitConformal::from_quantile(
            qhat,
            state.conformal.alpha(),
            n_calibration,
            self.config.std_floor,
        );
        let mut diagnostics = state.diagnostics.clone();
        diagnostics.qhat = qhat;
        diagnostics.n_calibration = n_calibration;
        swapped.state = Some(Calibrated {
            conformal,
            form: state.form,
            diagnostics,
        });
        Some(swapped)
    }
}

impl RoiModel for Rdrp {
    fn name(&self) -> String {
        "rDRP".to_string()
    }

    /// Convenience fit when no separate calibration RCT exists: holds out
    /// `internal_calib_fraction` of `data` (default 20%) as the
    /// calibration set. Production deployments should prefer
    /// [`Rdrp::fit_with_calibration`] with a *fresh* RCT matching the
    /// deployment distribution — that freshness is the entire point of
    /// the method under covariate shift.
    fn fit(&mut self, data: &RctDataset, rng: &mut Prng) -> Result<(), FitError> {
        if data.len() < 10 {
            return Err(FitError::InvalidData(format!(
                "rDRP: dataset of {} rows is too small to split for internal calibration",
                data.len()
            )));
        }
        let order = rng.permutation(data.len());
        let n_cal = ((data.len() as f64 * self.internal_calib_fraction).round() as usize)
            .clamp(1, data.len() - 1);
        let calibration = data.subset(&order[..n_cal]);
        let train = data.subset(&order[n_cal..]);
        self.fit_with_calibration(&train, &calibration, rng, &Obs::disabled())
    }

    fn predict_roi(&self, x: &Matrix) -> Vec<f64> {
        // Fixed seed: scoring must be deterministic for a fitted model.
        let mut rng = Prng::seed_from_u64(SCORING_SEED);
        self.predict_scores(x, &mut rng, &Obs::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::find_roi_star;
    use datasets::generator::{Population, RctGenerator};
    use datasets::{CriteoLike, ExperimentData, Setting, SettingSizes};

    fn small_config() -> RdrpConfig {
        RdrpConfig {
            drp: crate::DrpConfig {
                epochs: 20,
                ..crate::DrpConfig::default()
            },
            mc_passes: 25,
            ..RdrpConfig::default()
        }
    }

    #[test]
    fn full_pipeline_runs_and_reports_diagnostics() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(0);
        let train = gen.sample(6000, Population::Base, &mut rng);
        let cal = gen.sample(2000, Population::Base, &mut rng);
        let test = gen.sample(2000, Population::Base, &mut rng);
        let mut m = Rdrp::new(small_config()).unwrap();
        m.fit_with_calibration(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap();
        let d = m.diagnostics();
        assert!(d.roi_star.is_some());
        assert_eq!(d.degraded, None);
        assert_eq!(m.degraded(), None);
        let roi_star = d.roi_star.unwrap();
        assert!((0.0..1.0).contains(&roi_star), "roi* = {roi_star}");
        assert!(d.qhat > 0.0 && d.qhat.is_finite());
        assert_eq!(d.form_auccs.len(), 3); // paired improvements for 5a/5b/5c
        assert_eq!(d.n_calibration, 2000);
        let scores = m.predict_roi(&test.x);
        assert_eq!(scores.len(), 2000);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn intervals_cover_roi_star_at_nominal_rate() {
        // The conformal guarantee (Eq. 4) is about covering roi*_test; on
        // an exchangeable calibration/test pair the empirical coverage of
        // the *test-set* roi* must be >= 1 - alpha (up to noise).
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(1);
        let train = gen.sample(6000, Population::Base, &mut rng);
        let cal = gen.sample(3000, Population::Base, &mut rng);
        let test = gen.sample(3000, Population::Base, &mut rng);
        let mut m = Rdrp::new(small_config()).unwrap();
        m.fit_with_calibration(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap();
        let ivs = m.predict_intervals(&test.x, &mut rng);
        let roi_star_test =
            find_roi_star(&test.t, &test.y_r, &test.y_c, 1e-6, &Obs::disabled()).unwrap();
        let covered = ivs.iter().filter(|iv| iv.contains(roi_star_test)).count();
        let rate = covered as f64 / ivs.len() as f64;
        assert!(rate >= 0.80, "coverage of test roi* = {rate}");
        // Intervals are clipped to (0,1).
        assert!(ivs.iter().all(|iv| iv.lo >= 0.0 && iv.hi <= 1.0));
    }

    #[test]
    fn rdrp_not_worse_than_drp_under_shift_and_scarcity() {
        // The headline claim (Table I, InCo cell): with insufficient data
        // and covariate shift, rDRP outperforms raw DRP.
        let gen = CriteoLike::new();
        let sizes = SettingSizes {
            train_sufficient: 12_000,
            insufficient_fraction: 0.15,
            calibration: 3_000,
            test: 6_000,
        };
        let mut diffs = Vec::new();
        for seed in 0..3u64 {
            let mut rng = Prng::seed_from_u64(100 + seed);
            let data = ExperimentData::build(&gen, Setting::InCo, &sizes, &mut rng);
            let mut m = Rdrp::new(small_config()).unwrap();
            m.fit_with_calibration(&data.train, &data.calibration, &mut rng, &Obs::disabled())
                .unwrap();
            let rdrp_scores = m.predict_roi(&data.test.x);
            let drp_scores = m.drp().predict_roi(&data.test.x, &Obs::disabled());
            let a_rdrp = metrics::aucc_from_labels(&data.test, &rdrp_scores, 50);
            let a_drp = metrics::aucc_from_labels(&data.test, &drp_scores, 50);
            diffs.push(a_rdrp - a_drp);
        }
        let mean_diff: f64 = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!(
            mean_diff > -0.01,
            "rDRP should not lose to DRP under InCo (mean diff {mean_diff}, {diffs:?})"
        );
    }

    #[test]
    fn degenerate_calibration_falls_back_to_identity() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(2);
        let train = gen.sample(3000, Population::Base, &mut rng);
        let mut cal = gen.sample(500, Population::Base, &mut rng);
        // Destroy the calibration cost labels: zero cost uplift.
        cal.y_c = vec![0.0; cal.len()];
        let mut m = Rdrp::new(small_config()).unwrap();
        m.fit_with_calibration(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap();
        let d = m.diagnostics();
        assert_eq!(d.roi_star, None);
        assert_eq!(d.selected_form, CalibrationForm::Identity);
        assert_eq!(d.degraded, Some(DegradedMode::DegenerateLabels));
        assert_eq!(m.degraded(), Some(DegradedMode::DegenerateLabels));
        // Predictions equal plain DRP.
        let test = gen.sample(200, Population::Base, &mut rng);
        assert_eq!(
            m.predict_roi(&test.x),
            m.drp().predict_roi(&test.x, &Obs::disabled())
        );
    }

    #[test]
    fn degenerate_uncertainty_falls_back_to_drp_ranking() {
        // MC dropout disabled: every MC pass is identical, every std is
        // floored to the same constant, and the spread hits 0 — the
        // conformal score carries no per-individual information. The
        // pipeline must flag DegenerateUncertainty, keep all scores
        // finite, and rank exactly like plain DRP.
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(7);
        let train = gen.sample(3000, Population::Base, &mut rng);
        let cal = gen.sample(800, Population::Base, &mut rng);
        let test = gen.sample(300, Population::Base, &mut rng);
        let mut m = Rdrp::new(RdrpConfig {
            mc_dropout: 0.0,
            ..small_config()
        })
        .unwrap();
        m.fit_with_calibration(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap();
        let d = m.diagnostics();
        assert_eq!(d.degraded, Some(DegradedMode::DegenerateUncertainty));
        assert_eq!(d.selected_form, CalibrationForm::Identity);
        assert!(d.form_auccs.is_empty());
        // roi* and q̂ are still real — only the form degraded.
        assert!(d.roi_star.is_some());
        assert!(d.qhat.is_finite());
        let scores = m.predict_roi(&test.x);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(scores, m.drp().predict_roi(&test.x, &Obs::disabled()));
        // Intervals stay usable (constant width, clipped to (0,1)).
        let ivs = m.predict_intervals(&test.x, &mut rng);
        assert!(ivs.iter().all(|iv| iv.lo.is_finite() && iv.hi.is_finite()));
    }

    #[test]
    fn roimodel_fit_splits_internally() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(3);
        let data = gen.sample(4000, Population::Base, &mut rng);
        let mut m = Rdrp::new(small_config()).unwrap();
        m.fit(&data, &mut rng).unwrap();
        assert_eq!(m.diagnostics().n_calibration, 800); // 20%
        let scores = m.predict_roi(&data.x);
        assert_eq!(scores.len(), 4000);
    }

    #[test]
    fn predictions_are_deterministic_after_fit() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(4);
        let data = gen.sample(2000, Population::Base, &mut rng);
        let mut m = Rdrp::new(small_config()).unwrap();
        m.fit(&data, &mut rng).unwrap();
        let test = gen.sample(300, Population::Base, &mut rng);
        assert_eq!(m.predict_roi(&test.x), m.predict_roi(&test.x));
    }

    #[test]
    fn form_selection_degenerately_small_calibration_falls_back() {
        // Regression: select_form_bootstrap used to bootstrap-resample an
        // empty or singleton selection half for calibration sets smaller
        // than 4 rows, panicking inside the resampler. It must instead
        // decline to calibrate.
        for n in 1usize..=3 {
            let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let cal = RctDataset {
                x: Matrix::from_rows(&rows),
                t: (0..n).map(|i| (i % 2) as u8).collect(),
                y_r: vec![1.0; n],
                y_c: vec![1.0; n],
                true_tau_r: None,
                true_tau_c: None,
            };
            let preds = vec![0.5; n];
            let half_widths = vec![0.1; n];
            let mut rng = Prng::seed_from_u64(n as u64);
            let (form, report) =
                select_form_bootstrap(&cal, &preds, &half_widths, 1e-3, 8, &mut rng);
            assert_eq!(form, CalibrationForm::Identity, "n = {n}");
            assert!(report.is_empty(), "n = {n}");
        }
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let c = RdrpConfig {
            alpha: 2.0,
            ..RdrpConfig::default()
        };
        let err = Rdrp::new(c).unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)));
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn too_small_dataset_is_a_typed_error() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(8);
        let data = gen.sample(5, Population::Base, &mut rng);
        let mut m = Rdrp::new(small_config()).unwrap();
        let err = m.fit(&data, &mut rng).unwrap_err();
        assert!(matches!(err, FitError::InvalidData(_)));
    }
}
