//! The K-arm method layer: every ROI ranker behind a multi-treatment
//! fit/score/persist surface.
//!
//! Two routes produce a [`KArmRoiMethod`]:
//!
//! * **Adapted** — [`PerArm`] lifts any binary [`RoiMethod`] from
//!   [`crate::methods::METHODS`] to K arms by fitting one independent
//!   copy per treatment arm on the arm-vs-control slice
//!   ([`MultiRctDataset::to_binary`]). At `K = 2` this *is* the binary
//!   pipeline: the single inner method sees exactly the dataset the
//!   binary path would, consumes the shared RNG identically, and its
//!   artifact is saved in the v1 envelope — scores and artifact bytes
//!   are bitwise-identical to fitting the binary method directly (the
//!   differential suite pins this down).
//! * **Native** — [`KARM_METHODS`] registers methods that model all
//!   arms jointly ([`uplift::KTpm`] over the K-arm meta-learners and
//!   the shared-trunk multi-head network). These always persist in the
//!   v2 envelope carrying `n_arms`.
//!
//! Score matrices follow the crate-wide layout: `(K − 1) × n`, row
//! `k` holding arm `k + 1`'s score for every individual (control is
//! never a row) — the shape [`crate::mckp::mckp_allocate`] consumes.

use crate::artifact;
use crate::error::PipelineError;
use crate::methods::{self, MethodConfig, RoiMethod};
use crate::persist::PersistError;
use conformal::Interval;
use datasets::multi::MultiRctDataset;
use linalg::random::Prng;
use linalg::Matrix;
use obs::Obs;
use std::fmt;
use std::path::Path;
use tinyjson::{FromJson, JsonError, Value};
use uplift::{FitError, KTpm};

/// One K-arm ROI-ranking method behind a uniform fit/score/persist
/// surface — the multi-treatment analogue of [`RoiMethod`].
///
/// Object-safe on purpose: the bandit loop holds
/// `Box<dyn KArmRoiMethod>` per policy. Scoring is deterministic under
/// the same contract as the binary trait (MC sweeps re-seed from
/// [`crate::SCORING_SEED`] per call).
pub trait KArmRoiMethod: Send + Sync + fmt::Debug {
    /// Registry name, which is also the artifact tag.
    fn method_name(&self) -> &'static str;

    /// Human-readable label (e.g. `"TPM-XL ×3 arms"`, `"KTPM-SL"`).
    fn label(&self) -> String;

    /// Total arm count including control (`2` = binary).
    fn n_arms(&self) -> u8;

    /// Fits the method on K-arm RCT data. Methods without a
    /// calibration stage ignore `calibration`.
    ///
    /// # Errors
    /// [`FitError::InvalidData`] when either dataset fails validation
    /// or disagrees with this method's arm count; component errors
    /// propagate.
    fn fit(
        &mut self,
        train: &MultiRctDataset,
        calibration: &MultiRctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError>;

    /// Whether the method has been fitted (a loaded artifact counts).
    fn is_fitted(&self) -> bool;

    /// Feature dimension the fitted method consumes, `None` before
    /// fitting.
    fn n_features(&self) -> Option<usize>;

    /// The `(K − 1) × n` score matrix for the rows of `x`:
    /// `matrix[k][i]` ranks assigning individual `i` to arm `k + 1`.
    /// Deterministic: equal inputs give bitwise-equal matrices.
    ///
    /// # Panics
    /// Panics when unfitted (callers gate on
    /// [`KArmRoiMethod::is_fitted`]).
    fn score_matrix(&self, x: &Matrix, obs: &Obs) -> Vec<Vec<f64>>;

    /// [`KArmRoiMethod::score_matrix`] through the columnar f32 kernel
    /// path where the inner models have one; defaults to the scalar
    /// path. The DESIGN.md §11 tolerance contract applies per row.
    ///
    /// # Panics
    /// Panics when unfitted.
    fn score_matrix_block(&self, x: &Matrix, obs: &Obs) -> Vec<Vec<f64>> {
        self.score_matrix(x, obs)
    }

    /// Per-arm conformal intervals (`(K − 1) × n`), when every arm's
    /// inner method calibrates them; `None` otherwise.
    fn interval_matrix(&self, _x: &Matrix) -> Option<Vec<Vec<Interval>>> {
        None
    }

    /// The artifact body [`load_karm_method`] reconstructs this method
    /// from. For [`PerArm`] this is `{"arms": [body, ...]}`; natives
    /// define their own shape.
    fn body_to_json(&self) -> Value;

    /// When this method is the `K = 2` adapter over a single binary
    /// method: that method's v1 artifact body, letting
    /// [`save_karm_method`] emit bytes identical to
    /// [`crate::methods::save_method`]. `None` otherwise.
    fn binary_body(&self) -> Option<Value> {
        None
    }
}

// ---------------------------------------------------------------------
// PerArm: any binary method, lifted
// ---------------------------------------------------------------------

/// Lifts a binary [`RoiMethod`] to K arms: one independent copy per
/// treatment arm, each fitted on the arm-vs-control binary slice.
///
/// Fitting walks arms in order `1..K` on the *shared* RNG, so the
/// `K = 2` case consumes randomness exactly like the binary pipeline
/// (one arm, one fit) and reproduces it bitwise.
#[derive(Debug)]
pub struct PerArm {
    name: &'static str,
    arms: Vec<Box<dyn RoiMethod>>,
}

impl PerArm {
    /// Wraps pre-built per-arm instances. `arms[k]` will serve
    /// treatment arm `k + 1`. Callers normally go through
    /// [`build_karm`] instead.
    ///
    /// # Errors
    /// [`PipelineError::Config`] when `arms` is empty or longer than
    /// 254 (arm indices are `u8` with control at 0).
    pub fn new(name: &'static str, arms: Vec<Box<dyn RoiMethod>>) -> Result<PerArm, PipelineError> {
        if arms.is_empty() {
            return Err(PipelineError::Config(
                "PerArm needs at least one treatment arm".to_string(),
            ));
        }
        if arms.len() > usize::from(u8::MAX) - 1 {
            return Err(PipelineError::Config(format!(
                "PerArm supports at most 254 treatment arms, got {}",
                arms.len()
            )));
        }
        Ok(PerArm { name, arms })
    }

    /// The per-arm inner methods, in arm order (`[0]` serves arm 1).
    pub fn arms(&self) -> &[Box<dyn RoiMethod>] {
        &self.arms
    }

    fn check_dataset(&self, role: &str, data: &MultiRctDataset) -> Result<(), FitError> {
        if let Some(problem) = data.validate() {
            return Err(FitError::InvalidData(format!(
                "PerArm::fit: {role}: {problem}"
            )));
        }
        if data.n_arms() != self.n_arms() {
            return Err(FitError::InvalidData(format!(
                "PerArm::fit: {role} has {} arms, method expects {}",
                data.n_arms(),
                self.n_arms()
            )));
        }
        Ok(())
    }
}

impl KArmRoiMethod for PerArm {
    fn method_name(&self) -> &'static str {
        self.name
    }

    fn label(&self) -> String {
        match self.arms.first() {
            Some(first) if self.arms.len() == 1 => first.label(),
            Some(first) => format!("{} ×{} arms", first.label(), self.arms.len()),
            None => self.name.to_string(),
        }
    }

    fn n_arms(&self) -> u8 {
        self.arms.len() as u8 + 1
    }

    fn fit(
        &mut self,
        train: &MultiRctDataset,
        calibration: &MultiRctDataset,
        rng: &mut Prng,
        obs: &Obs,
    ) -> Result<(), FitError> {
        self.check_dataset("train", train)?;
        self.check_dataset("calibration", calibration)?;
        for (idx, arm) in self.arms.iter_mut().enumerate() {
            let k = idx as u8 + 1;
            let train_k = train.to_binary(k);
            let cal_k = calibration.to_binary(k);
            arm.fit(&train_k, &cal_k, rng, obs)?;
        }
        Ok(())
    }

    fn is_fitted(&self) -> bool {
        self.arms.iter().all(|a| a.is_fitted())
    }

    fn n_features(&self) -> Option<usize> {
        self.arms.first().and_then(|a| a.n_features())
    }

    fn score_matrix(&self, x: &Matrix, obs: &Obs) -> Vec<Vec<f64>> {
        self.arms.iter().map(|a| a.scores_fresh(x, obs)).collect()
    }

    fn score_matrix_block(&self, x: &Matrix, obs: &Obs) -> Vec<Vec<f64>> {
        self.arms.iter().map(|a| a.scores_block(x, obs)).collect()
    }

    fn interval_matrix(&self, x: &Matrix) -> Option<Vec<Vec<Interval>>> {
        self.arms.iter().map(|a| a.intervals(x)).collect()
    }

    fn body_to_json(&self) -> Value {
        Value::Obj(vec![(
            "arms".to_string(),
            Value::Arr(self.arms.iter().map(|a| a.body_to_json()).collect()),
        )])
    }

    fn binary_body(&self) -> Option<Value> {
        match self.arms.as_slice() {
            [only] => Some(only.body_to_json()),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Native K-arm methods
// ---------------------------------------------------------------------

/// The `karm-*` registry rows: [`KTpm`] behind the method trait.
pub struct KArmTpmMethod {
    name: &'static str,
    model: KTpm,
}

impl fmt::Debug for KArmTpmMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KArmTpmMethod")
            .field("name", &self.name)
            .field("n_arms", &self.model.n_arms())
            .field("fitted", &self.model.is_fitted())
            .finish()
    }
}

impl KArmTpmMethod {
    fn new(name: &'static str, model: KTpm) -> KArmTpmMethod {
        KArmTpmMethod { name, model }
    }

    /// Reconstructs from an artifact body, re-deriving the static tag
    /// from the model's label and checking the envelope's arm count.
    fn from_body(body: &Value, n_arms: u8) -> Result<Box<dyn KArmRoiMethod>, JsonError> {
        let model = KTpm::from_tagged_json(body)?;
        let name = karm_tpm_tag(model.label())
            .ok_or_else(|| JsonError::msg(format!("unknown KTPM label {:?}", model.label())))?;
        if model.n_arms() != n_arms {
            return Err(JsonError::msg(format!(
                "artifact envelope declares {n_arms} arms but the body carries {}",
                model.n_arms()
            )));
        }
        Ok(Box::new(KArmTpmMethod { name, model }))
    }
}

/// Maps a [`KTpm`] label (`"SL"`, `"Net"`, …) to its registry tag.
fn karm_tpm_tag(label: &str) -> Option<&'static str> {
    match label {
        "SL" => Some("karm-tpm-sl"),
        "TL" => Some("karm-tpm-tl"),
        "XL" => Some("karm-tpm-xl"),
        "Net" => Some("karm-net"),
        _ => None,
    }
}

impl KArmRoiMethod for KArmTpmMethod {
    fn method_name(&self) -> &'static str {
        self.name
    }

    fn label(&self) -> String {
        format!("KTPM-{}", self.model.label())
    }

    fn n_arms(&self) -> u8 {
        self.model.n_arms()
    }

    fn fit(
        &mut self,
        train: &MultiRctDataset,
        _calibration: &MultiRctDataset,
        rng: &mut Prng,
        _obs: &Obs,
    ) -> Result<(), FitError> {
        self.model.fit(train, rng)
    }

    fn is_fitted(&self) -> bool {
        self.model.is_fitted()
    }

    fn n_features(&self) -> Option<usize> {
        self.model.n_features()
    }

    fn score_matrix(&self, x: &Matrix, _obs: &Obs) -> Vec<Vec<f64>> {
        self.model.predict_roi_matrix(x)
    }

    fn score_matrix_block(&self, x: &Matrix, _obs: &Obs) -> Vec<Vec<f64>> {
        self.model.predict_roi_matrix_block(x)
    }

    fn body_to_json(&self) -> Value {
        // Every registry constructor uses serializable components, so
        // this is always `Some`; `Null` would only surface for a
        // hand-built KTpm outside the registry.
        self.model.to_tagged_json().unwrap_or(Value::Null)
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Constructor signature of a native K-arm method: arm count + config.
pub type KArmBuildFn = fn(u8, &MethodConfig) -> Result<Box<dyn KArmRoiMethod>, PipelineError>;

/// Loader signature: artifact body + the envelope's declared arm count.
pub type KArmLoadFn = fn(&Value, u8) -> Result<Box<dyn KArmRoiMethod>, JsonError>;

/// One native registry row: a name, its label, and the constructors —
/// the K-arm analogue of [`crate::methods::MethodSpec`], with the arm
/// count threaded through both.
pub struct KArmMethodSpec {
    /// Registry name == artifact tag.
    pub name: &'static str,
    /// Human-readable label.
    pub label: &'static str,
    /// Builds an unfitted instance for a given arm count.
    pub build: KArmBuildFn,
    /// Reconstructs an instance from an artifact body and the
    /// envelope's declared arm count.
    pub load_body: KArmLoadFn,
}

impl fmt::Debug for KArmMethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KArmMethodSpec")
            .field("name", &self.name)
            .field("label", &self.label)
            .finish()
    }
}

/// Every native K-arm method. Binary registry names work too — see
/// [`build_karm`], which falls back to a [`PerArm`] adapter.
pub const KARM_METHODS: [KArmMethodSpec; 4] = [
    KArmMethodSpec {
        name: "karm-tpm-sl",
        label: "KTPM-SL",
        build: |k, _| {
            Ok(Box::new(KArmTpmMethod::new(
                "karm-tpm-sl",
                KTpm::slearner(k),
            )))
        },
        load_body: KArmTpmMethod::from_body,
    },
    KArmMethodSpec {
        name: "karm-tpm-tl",
        label: "KTPM-TL",
        build: |k, _| {
            Ok(Box::new(KArmTpmMethod::new(
                "karm-tpm-tl",
                KTpm::tlearner(k),
            )))
        },
        load_body: KArmTpmMethod::from_body,
    },
    KArmMethodSpec {
        name: "karm-tpm-xl",
        label: "KTPM-XL",
        build: |k, _| {
            Ok(Box::new(KArmTpmMethod::new(
                "karm-tpm-xl",
                KTpm::xlearner(k),
            )))
        },
        load_body: KArmTpmMethod::from_body,
    },
    KArmMethodSpec {
        name: "karm-net",
        label: "KTPM-Net",
        build: |k, c| {
            Ok(Box::new(KArmTpmMethod::new(
                "karm-net",
                KTpm::net(k, c.net.rep_dim, c.net.head_hidden, c.net.epochs),
            )))
        },
        load_body: KArmTpmMethod::from_body,
    },
];

/// Resolves a native registry name to its spec.
pub fn karm_spec(name: &str) -> Option<&'static KArmMethodSpec> {
    KARM_METHODS.iter().find(|s| s.name == name)
}

/// Every name [`build_karm`] accepts: the native K-arm methods first,
/// then every binary method (served through [`PerArm`]).
pub fn karm_method_names() -> Vec<&'static str> {
    KARM_METHODS
        .iter()
        .map(|s| s.name)
        .chain(methods::method_names())
        .collect()
}

/// Builds an unfitted K-arm method by name: a native `karm-*` method,
/// or any binary registry name lifted through [`PerArm`] (one inner
/// instance per treatment arm).
///
/// # Errors
/// [`PipelineError::Config`] for `n_arms < 2`, an unknown name (the
/// message lists every valid one), or an invalid configuration.
pub fn build_karm(
    name: &str,
    n_arms: u8,
    config: &MethodConfig,
) -> Result<Box<dyn KArmRoiMethod>, PipelineError> {
    if n_arms < 2 {
        return Err(PipelineError::Config(format!(
            "n_arms must be at least 2 (control + one treatment), got {n_arms}"
        )));
    }
    if let Some(s) = karm_spec(name) {
        return (s.build)(n_arms, config);
    }
    match methods::spec(name) {
        Some(s) => {
            let arms = (1..n_arms)
                .map(|_| (s.build)(config))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(PerArm::new(s.name, arms)?))
        }
        None => Err(PipelineError::Config(format!(
            "unknown method {name:?}; valid methods: {}",
            karm_method_names().join(", ")
        ))),
    }
}

// ---------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------

/// Saves a K-arm method as a versioned artifact at `path`, through the
/// crash-safe atomic-write path. A `K = 2` [`PerArm`] is written in the
/// **v1** (binary) envelope — byte-identical to
/// [`crate::methods::save_method`] on the inner method — so binary
/// tooling keeps reading it; everything else gets the v2 envelope with
/// its `n_arms` field.
///
/// # Errors
/// [`PersistError::Io`] when the file cannot be written.
pub fn save_karm_method(
    method: &dyn KArmRoiMethod,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let rendered = match method.binary_body() {
        Some(body) => artifact::render(method.method_name(), body),
        None => {
            artifact::render_with_arms(method.method_name(), method.n_arms(), method.body_to_json())
        }
    };
    crate::persist::atomic_write_artifact(path, &rendered)
}

/// Loads any K-arm artifact by its embedded method tag: native tags
/// dispatch through [`KARM_METHODS`]; binary tags reconstruct a
/// [`PerArm`] — from the single v1 body (one arm), or from a v2
/// envelope's `{"arms": [...]}` array.
///
/// # Errors
/// [`PersistError::Io`]/[`PersistError::Serde`] for unreadable or
/// unparseable files, [`PersistError::Format`] for a non-artifact, an
/// unknown tag, or an arm-count mismatch between envelope and body,
/// [`PersistError::Checksum`] for a tampered body.
pub fn load_karm_method(path: impl AsRef<Path>) -> Result<Box<dyn KArmRoiMethod>, PersistError> {
    let v = tinyjson::from_str(&crate::persist::read_artifact(path)?)?;
    let (tag, body) = artifact::decode(&v)?;
    let n_arms = artifact::artifact_n_arms(&v)?;
    if let Some(kspec) = karm_spec(&tag) {
        return Ok((kspec.load_body)(body, n_arms)?);
    }
    let bspec = methods::spec(&tag).ok_or_else(|| {
        PersistError::Format(format!(
            "unknown method tag {tag:?} (known: {})",
            karm_method_names().join(", ")
        ))
    })?;
    let version = u64::from_json(v.fetch("format_version")).unwrap_or(0);
    let arms = if version == artifact::FORMAT_VERSION {
        // A v1 binary artifact is the K = 2 case: one arm, whose body
        // is the envelope body itself.
        vec![(bspec.load_body)(body)?]
    } else {
        let Value::Arr(bodies) = body.fetch("arms") else {
            return Err(PersistError::Format(format!(
                "v2 artifact {tag:?} has no \"arms\" array"
            )));
        };
        if bodies.len() != usize::from(n_arms) - 1 {
            return Err(PersistError::Format(format!(
                "artifact declares {n_arms} arms but carries {} per-arm bodies",
                bodies.len()
            )));
        }
        bodies
            .iter()
            .map(|b| (bspec.load_body)(b))
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(Box::new(PerArm::new(bspec.name, arms).map_err(|e| {
        PersistError::Format(format!("artifact {tag:?}: {e}"))
    })?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::generator::{Population, RctGenerator};
    use datasets::multi::MultiCouponGenerator;
    use datasets::CriteoLike;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rdrp_karm_{name}_{}.json", std::process::id()))
    }

    fn config() -> MethodConfig {
        let mut c = MethodConfig::default();
        c.net.epochs = 2;
        c.net.hidden = 8;
        c.net.rep_dim = 8;
        c.net.head_hidden = 4;
        c.rdrp.drp.epochs = 2;
        c.rdrp.mc_passes = 3;
        c
    }

    #[test]
    fn k2_per_arm_reproduces_the_binary_method_bitwise() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(41);
        let train = gen.sample(800, Population::Base, &mut rng);
        let cal = gen.sample(300, Population::Base, &mut rng);
        let test = gen.sample(120, Population::Base, &mut rng);

        let mut binary = methods::build("tpm-xl", &config()).unwrap();
        let mut rng_b = Prng::seed_from_u64(7);
        binary
            .fit(&train, &cal, &mut rng_b, &Obs::disabled())
            .unwrap();
        let binary_scores = binary.scores_fresh(&test.x, &Obs::disabled());

        let mut karm = build_karm("tpm-xl", 2, &config()).unwrap();
        let mtrain = MultiRctDataset::from_binary(&train);
        let mcal = MultiRctDataset::from_binary(&cal);
        let mut rng_k = Prng::seed_from_u64(7);
        karm.fit(&mtrain, &mcal, &mut rng_k, &Obs::disabled())
            .unwrap();
        let matrix = karm.score_matrix(&test.x, &Obs::disabled());

        assert_eq!(matrix.len(), 1);
        assert_eq!(
            matrix[0], binary_scores,
            "K=2 scores must be bitwise-identical"
        );
    }

    #[test]
    fn k2_artifact_bytes_match_the_binary_save() {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(42);
        let train = gen.sample(500, Population::Base, &mut rng);
        let cal = gen.sample(200, Population::Base, &mut rng);

        let mut binary = methods::build("tpm-xl", &config()).unwrap();
        let mut rng_b = Prng::seed_from_u64(9);
        binary
            .fit(&train, &cal, &mut rng_b, &Obs::disabled())
            .unwrap();
        let p_binary = tmp("binary");
        methods::save_method(binary.as_ref(), &p_binary).unwrap();

        let mut karm = build_karm("tpm-xl", 2, &config()).unwrap();
        let mut rng_k = Prng::seed_from_u64(9);
        karm.fit(
            &MultiRctDataset::from_binary(&train),
            &MultiRctDataset::from_binary(&cal),
            &mut rng_k,
            &Obs::disabled(),
        )
        .unwrap();
        let p_karm = tmp("k2");
        save_karm_method(karm.as_ref(), &p_karm).unwrap();

        let bytes_binary = std::fs::read_to_string(&p_binary).unwrap();
        let bytes_karm = std::fs::read_to_string(&p_karm).unwrap();
        assert_eq!(
            bytes_binary, bytes_karm,
            "K=2 artifact must be byte-identical"
        );

        // And the binary loader still reads the K=2 artifact.
        let reloaded = methods::load_method(&p_karm).unwrap();
        assert_eq!(reloaded.method_name(), "tpm-xl");
        let _ = std::fs::remove_file(&p_binary);
        let _ = std::fs::remove_file(&p_karm);
    }

    #[test]
    fn k3_per_arm_fits_scores_and_roundtrips_v2() {
        let gen = MultiCouponGenerator::new(2);
        let mut rng = Prng::seed_from_u64(5);
        let train = gen.sample(900, Population::Base, &mut rng);
        let cal = gen.sample(300, Population::Base, &mut rng);
        let test = gen.sample(80, Population::Base, &mut rng);

        let mut m = build_karm("tpm-xl", 3, &config()).unwrap();
        assert_eq!(m.n_arms(), 3);
        assert!(!m.is_fitted());
        m.fit(&train, &cal, &mut rng, &Obs::disabled()).unwrap();
        assert!(m.is_fitted());
        assert_eq!(m.n_features(), Some(test.x.cols()));
        let matrix = m.score_matrix(&test.x, &Obs::disabled());
        assert_eq!(matrix.len(), 2);
        assert!(matrix.iter().all(|row| row.len() == test.len()));

        let p = tmp("k3");
        save_karm_method(m.as_ref(), &p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.contains("\"format_version\": 2"), "{text}");
        assert!(text.contains("\"n_arms\": 3"), "{text}");

        let loaded = load_karm_method(&p).unwrap();
        assert_eq!(loaded.n_arms(), 3);
        assert_eq!(loaded.method_name(), "tpm-xl");
        assert_eq!(
            loaded.score_matrix(&test.x, &Obs::disabled()),
            matrix,
            "loaded artifact must score bitwise-identically"
        );
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn native_ktpm_fits_scores_and_roundtrips() {
        let gen = MultiCouponGenerator::new(3);
        let mut rng = Prng::seed_from_u64(11);
        let train = gen.sample(900, Population::Base, &mut rng);
        let cal = gen.sample(200, Population::Base, &mut rng);
        let test = gen.sample(60, Population::Base, &mut rng);

        let mut m = build_karm("karm-tpm-xl", 4, &config()).unwrap();
        assert_eq!(m.method_name(), "karm-tpm-xl");
        assert_eq!(m.label(), "KTPM-XL");
        assert_eq!(m.n_arms(), 4);
        m.fit(&train, &cal, &mut rng, &Obs::disabled()).unwrap();
        let matrix = m.score_matrix(&test.x, &Obs::disabled());
        assert_eq!(matrix.len(), 3);

        let p = tmp("native");
        save_karm_method(m.as_ref(), &p).unwrap();
        let loaded = load_karm_method(&p).unwrap();
        assert_eq!(loaded.method_name(), "karm-tpm-xl");
        assert_eq!(loaded.n_arms(), 4);
        assert_eq!(loaded.score_matrix(&test.x, &Obs::disabled()), matrix);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rdrp_per_arm_exposes_interval_matrix() {
        let gen = MultiCouponGenerator::new(2);
        let mut rng = Prng::seed_from_u64(3);
        let train = gen.sample(900, Population::Base, &mut rng);
        let cal = gen.sample(400, Population::Base, &mut rng);
        let test = gen.sample(40, Population::Base, &mut rng);

        let mut m = build_karm("rdrp", 3, &config()).unwrap();
        m.fit(&train, &cal, &mut rng, &Obs::disabled()).unwrap();
        let intervals = m.interval_matrix(&test.x).unwrap();
        assert_eq!(intervals.len(), 2);
        assert!(intervals.iter().all(|row| row.len() == test.len()));
        // Methods without a conformal stage answer None.
        let mut plain = build_karm("tpm-xl", 3, &config()).unwrap();
        plain.fit(&train, &cal, &mut rng, &Obs::disabled()).unwrap();
        assert!(plain.interval_matrix(&test.x).is_none());
    }

    #[test]
    fn fit_rejects_arm_count_mismatch() {
        let gen = MultiCouponGenerator::new(2);
        let mut rng = Prng::seed_from_u64(1);
        let train = gen.sample(300, Population::Base, &mut rng);
        let cal = gen.sample(100, Population::Base, &mut rng);
        let mut m = build_karm("tpm-xl", 4, &config()).unwrap();
        let err = m.fit(&train, &cal, &mut rng, &Obs::disabled()).unwrap_err();
        assert!(matches!(err, FitError::InvalidData(_)), "{err:?}");
        let mut native = build_karm("karm-tpm-xl", 4, &config()).unwrap();
        let err = native
            .fit(&train, &cal, &mut rng, &Obs::disabled())
            .unwrap_err();
        assert!(matches!(err, FitError::InvalidData(_)), "{err:?}");
    }

    #[test]
    fn unknown_name_and_bad_arm_count_are_config_errors() {
        let err = build_karm("spaghetti-forest", 3, &config()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("spaghetti-forest"), "{msg}");
        assert!(msg.contains("karm-tpm-sl"), "{msg}");
        assert!(msg.contains("tpm-sl"), "{msg}");
        let err = build_karm("tpm-sl", 1, &config()).unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err:?}");
    }

    #[test]
    fn registry_names_are_unique_across_both_registries() {
        let names = karm_method_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate registry names");
        for s in &KARM_METHODS {
            assert!(karm_spec(s.name).is_some());
        }
    }
}
