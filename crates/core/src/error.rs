//! Typed pipeline failures.
//!
//! [`PipelineError`] is the outermost layer of the error hierarchy:
//!
//! ```text
//! nn::TrainError  →  uplift::FitError  →  rdrp::PipelineError
//! ```
//!
//! Construction-time problems (a bad [`crate::RdrpConfig`], zero
//! treatment arms) are [`PipelineError::Config`]; malformed allocator
//! inputs are [`PipelineError::Data`]; everything that goes wrong while
//! fitting arrives as [`PipelineError::Fit`] via the `From` chain.

use std::fmt;
use uplift::FitError;

/// Why an rDRP pipeline stage could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A configuration value is out of range (caught at construction).
    Config(String),
    /// Non-fit inputs (allocation scores, costs, budget) are malformed.
    Data(String),
    /// Training or calibration failed (see [`uplift::FitError`]).
    Fit(FitError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::Data(msg) => write!(f, "invalid input data: {msg}"),
            PipelineError::Fit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FitError> for PipelineError {
    fn from(e: FitError) -> Self {
        PipelineError::Fit(e)
    }
}

impl From<nn::TrainError> for PipelineError {
    fn from(e: nn::TrainError) -> Self {
        PipelineError::Fit(FitError::Train(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_chain_reaches_train_errors() {
        let e: PipelineError = nn::TrainError::EmptyDataset.into();
        assert!(matches!(
            e,
            PipelineError::Fit(FitError::Train(nn::TrainError::EmptyDataset))
        ));
        // source() walks back down the chain.
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(e.to_string().contains("training failed"));
    }

    #[test]
    fn config_and_data_render_their_message() {
        assert!(PipelineError::Config("alpha out of range".into())
            .to_string()
            .contains("alpha"));
        assert!(PipelineError::Data("ragged costs".into())
            .to_string()
            .contains("ragged"));
    }
}
