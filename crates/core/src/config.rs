//! Hyperparameter configuration.
//!
//! The paper states DRP and rDRP share hyperparameters with [5]: one
//! hidden layer of 10–100 units (we default to 64), MC dropout repeated
//! 10–100 times (we default to 50), calibration sets of 1 000–10 000
//! points, binary-search tolerance around 1e-3 (we use 1e-4), and a
//! conformal error rate α = 0.1.

/// DRP training hyperparameters.
#[derive(Debug, Clone)]
pub struct DrpConfig {
    /// Hidden layer width (paper: 10–100).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Dropout probability (also the MC-dropout layer's rate).
    pub dropout: f64,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
}

tinyjson::json_struct!(DrpConfig {
    hidden,
    epochs,
    batch_size,
    lr,
    dropout,
    grad_clip,
    weight_decay
});

impl Default for DrpConfig {
    fn default() -> Self {
        DrpConfig {
            hidden: 64,
            epochs: 40,
            batch_size: 256,
            lr: 1e-3,
            dropout: 0.1,
            grad_clip: 5.0,
            weight_decay: 1e-5,
        }
    }
}

/// rDRP post-processing hyperparameters (on top of [`DrpConfig`]).
#[derive(Debug, Clone)]
pub struct RdrpConfig {
    /// Underlying DRP configuration.
    pub drp: DrpConfig,
    /// MC-dropout passes (paper: 10–100).
    pub mc_passes: usize,
    /// Dropout rate of the MC layer at inference. The paper *adds* a
    /// dropout layer for MC inference, so this need not equal the
    /// training rate; 0.5 is the Gal & Ghahramani convention.
    pub mc_dropout: f64,
    /// Conformal miscoverage level α.
    pub alpha: f64,
    /// Binary-search tolerance ε for Algorithm 2.
    pub search_eps: f64,
    /// Floor for the MC std before dividing (keeps Eq. 3 finite).
    pub std_floor: f64,
    /// Spread threshold below which the calibration-set MC stds are
    /// declared degenerate (near-constant uncertainty): when
    /// `max(std) − min(std)` on the calibration set is at most this
    /// value, rDRP falls back to plain DRP ranking in
    /// [`crate::calibrate::DegradedMode::DegenerateUncertainty`].
    pub std_degeneracy_eps: f64,
}

tinyjson::json_struct!(RdrpConfig {
    drp,
    mc_passes,
    mc_dropout,
    alpha,
    search_eps,
    std_floor,
    std_degeneracy_eps
});

impl Default for RdrpConfig {
    fn default() -> Self {
        RdrpConfig {
            drp: DrpConfig::default(),
            mc_passes: 50,
            mc_dropout: 0.5,
            alpha: 0.1,
            search_eps: 1e-4,
            // Floor on r̂(x) before dividing in Eq. 3. Too small a floor
            // lets near-deterministic predictions blow the conformal
            // score (and hence q̂) up by orders of magnitude; 1e-3 is
            // ~1% of a typical MC std.
            std_floor: 1e-3,
            // A healthy MC-dropout pass spreads stds by ~1e-2; a spread
            // at the floor's own scale means the stds are all the floor.
            std_degeneracy_eps: 1e-6,
        }
    }
}

impl RdrpConfig {
    /// Validates ranges; returns the first problem found.
    pub fn validate(&self) -> Option<String> {
        if self.drp.hidden == 0 {
            return Some("hidden must be positive".into());
        }
        if !(0.0..1.0).contains(&self.drp.dropout) {
            return Some("dropout must be in [0,1)".into());
        }
        if self.mc_passes == 0 {
            return Some("mc_passes must be positive".into());
        }
        if !(0.0..1.0).contains(&self.mc_dropout) {
            return Some("mc_dropout must be in [0,1)".into());
        }
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return Some("alpha must be in (0,1)".into());
        }
        if self.search_eps <= 0.0 {
            return Some("search_eps must be positive".into());
        }
        if self.std_floor <= 0.0 {
            return Some("std_floor must be positive".into());
        }
        if self.std_degeneracy_eps < 0.0 {
            return Some("std_degeneracy_eps must be non-negative".into());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert_eq!(RdrpConfig::default().validate(), None);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = RdrpConfig {
            alpha: 1.0,
            ..RdrpConfig::default()
        };
        assert!(c.validate().unwrap().contains("alpha"));
        let c = RdrpConfig {
            mc_passes: 0,
            ..RdrpConfig::default()
        };
        assert!(c.validate().unwrap().contains("mc_passes"));
        let mut c = RdrpConfig::default();
        c.drp.dropout = 1.0;
        assert!(c.validate().unwrap().contains("dropout"));
        let c = RdrpConfig {
            search_eps: 0.0,
            ..RdrpConfig::default()
        };
        assert!(c.validate().unwrap().contains("search_eps"));
    }

    #[test]
    fn serde_roundtrip() {
        use tinyjson::{FromJson, ToJson};
        let c = RdrpConfig::default();
        let json = tinyjson::to_string(&c.to_json());
        let back = RdrpConfig::from_json(&tinyjson::from_str(&json).unwrap()).unwrap();
        assert_eq!(back.mc_passes, c.mc_passes);
        assert_eq!(back.drp.hidden, c.drp.hidden);
    }
}
