//! The DRP model (Zhou et al., AAAI 2023) — the baseline rDRP builds on.

use crate::config::DrpConfig;
use crate::loss::DrpObjective;
use datasets::RctDataset;
use linalg::random::Prng;
use linalg::stats::Standardizer;
use linalg::vector::sigmoid;
use linalg::Matrix;
use nn::{mc_predict_map, Activation, McStats, Mlp, TrainConfig, Workspace};
use obs::Obs;
use uplift::error::{check_both_groups, check_xty};
use uplift::{FitError, RoiModel};

/// Direct ROI Prediction: a one-hidden-layer network scoring `ŝ(x)` whose
/// sigmoid is an unbiased ROI estimate when the Eq. (2) loss converges.
#[derive(Debug, Clone)]
pub struct DrpModel {
    config: DrpConfig,
    state: Option<Fitted>,
}

tinyjson::json_struct!(DrpModel { config, state });

#[derive(Debug, Clone)]
struct Fitted {
    scaler: Standardizer,
    net: Mlp,
    final_loss: Option<f64>,
}

tinyjson::json_struct!(Fitted {
    scaler,
    net,
    final_loss
});

impl DrpModel {
    /// Creates an unfitted DRP model.
    pub fn new(config: DrpConfig) -> Self {
        DrpModel {
            config,
            state: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DrpConfig {
        &self.config
    }

    /// Raw network scores `ŝ(x)` (pre-sigmoid), with batch-inference
    /// accounting routed through [`Mlp::predict_scalar`]
    /// (`infer.predict_*` histograms and counters).
    ///
    /// # Panics
    /// Panics before [`RoiModel::fit`].
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn predict_score(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        let state = self.state.as_ref().expect("DrpModel: fit before predict");
        let z = state.scaler.transform(x);
        state.net.predict_scalar(&z, obs)
    }

    /// [`RoiModel::predict_roi`] with batch-inference accounting.
    ///
    /// # Panics
    /// Panics before [`RoiModel::fit`].
    pub fn predict_roi(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        self.predict_score(x, obs)
            .into_iter()
            .map(sigmoid)
            .collect()
    }

    /// [`DrpModel::predict_roi`] reusing a caller-owned [`Workspace`] for
    /// the serial inference path — the variant long-lived scorers (the
    /// serving engine's worker threads) call in a loop.
    ///
    /// # Panics
    /// Panics before [`RoiModel::fit`].
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn predict_roi_with(&self, x: &Matrix, ws: &mut Workspace, obs: &Obs) -> Vec<f64> {
        let state = self.state.as_ref().expect("DrpModel: fit before predict");
        let z = state.scaler.transform(x);
        state
            .net
            .predict_scalar_with(&z, ws, obs)
            .into_iter()
            .map(sigmoid)
            .collect()
    }

    /// [`DrpModel::predict_roi`] through the columnar f32 kernel path
    /// ([`nn::Mlp::predict_scalar_block`]): the network runs in f32
    /// blocks, then the sigmoid is applied in f64. Scores match the
    /// scalar path to f32 rounding, not bitwise — see DESIGN.md §11 for
    /// the tolerance contract.
    ///
    /// # Panics
    /// Panics before [`RoiModel::fit`].
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn predict_roi_block(&self, x: &Matrix, obs: &Obs) -> Vec<f64> {
        let state = self.state.as_ref().expect("DrpModel: fit before predict");
        let z = state.scaler.transform(x);
        state
            .net
            .predict_scalar_block(&z, obs)
            .into_iter()
            .map(sigmoid)
            .collect()
    }

    /// Feature dimension the fitted network consumes, or `None` before
    /// [`RoiModel::fit`].
    pub fn n_features(&self) -> Option<usize> {
        self.state.as_ref().map(|s| s.net.input_dim())
    }

    /// MC-dropout statistics of the *ROI* estimate `σ(ŝ)` — the mean is a
    /// smoothed point prediction and the std is the paper's `r̂(x)`.
    ///
    /// # Panics
    /// Panics before [`RoiModel::fit`] or when `passes == 0`.
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn mc_roi(
        &self,
        x: &Matrix,
        passes: usize,
        std_floor: f64,
        rng: &mut Prng,
        obs: &Obs,
    ) -> McStats {
        let state = self.state.as_ref().expect("DrpModel: fit before predict");
        let z = state.scaler.transform(x);
        mc_predict_map(&state.net, &z, passes, std_floor, rng, sigmoid, obs)
    }

    /// Like [`DrpModel::mc_roi`] but with the dropout layer's rate
    /// overridden to `rate` for the MC passes (the paper adds the MC
    /// dropout layer at inference, so its rate is independent of
    /// training). MC-sweep accounting goes through [`mc_predict_map`]
    /// (`infer.mc_*` histograms and counters).
    ///
    /// # Panics
    /// Panics before [`RoiModel::fit`] or when `passes == 0`.
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn mc_roi_with_rate(
        &self,
        x: &Matrix,
        passes: usize,
        rate: f64,
        std_floor: f64,
        rng: &mut Prng,
        obs: &Obs,
    ) -> McStats {
        let state = self.state.as_ref().expect("DrpModel: fit before predict");
        let z = state.scaler.transform(x);
        let net = state.net.with_dropout_rate(rate);
        mc_predict_map(&net, &z, passes, std_floor, rng, sigmoid, obs)
    }

    /// Final training loss (diagnostic; the paper's Fig. 3 is about this
    /// value failing to reach the convergence point). `None` when the
    /// trainer ran for zero epochs.
    ///
    /// # Panics
    /// Panics before [`RoiModel::fit`].
    #[allow(clippy::expect_used)] // documented API-misuse panic
    pub fn final_loss(&self) -> Option<f64> {
        self.state.as_ref().expect("DrpModel: fit first").final_loss
    }

    /// [`RoiModel::fit`] with the trainer's trace vocabulary
    /// (`train.epoch` events, divergence/LR-halving retries, final-loss
    /// gauge — see [`nn::train`]).
    pub fn fit(&mut self, data: &RctDataset, rng: &mut Prng, obs: &Obs) -> Result<(), FitError> {
        check_xty("DRP", &data.x, &data.t, &data.y_r)?;
        check_xty("DRP", &data.x, &data.t, &data.y_c)?;
        check_both_groups("DRP", &data.t)?;
        let (scaler, z) = {
            let s = Standardizer::fit(&data.x);
            let z = s.transform(&data.x);
            (s, z)
        };
        let mut net = Mlp::builder(z.cols())
            .dense(self.config.hidden, Activation::Elu)
            .dropout(self.config.dropout)
            .dense(1, Activation::Identity)
            .build(rng);
        let objective = DrpObjective::new(data.t.clone(), data.y_r.clone(), data.y_c.clone());
        let cfg = TrainConfig {
            epochs: self.config.epochs,
            batch_size: self.config.batch_size,
            lr: self.config.lr,
            grad_clip: self.config.grad_clip,
            weight_decay: self.config.weight_decay,
            ..TrainConfig::default()
        };
        let report = nn::train(&mut net, &z, &objective, &cfg, rng, obs)?;
        self.state = Some(Fitted {
            scaler,
            net,
            final_loss: report.final_loss(),
        });
        Ok(())
    }
}

impl RoiModel for DrpModel {
    fn name(&self) -> String {
        "DRP".to_string()
    }

    fn fit(&mut self, data: &RctDataset, rng: &mut Prng) -> Result<(), FitError> {
        DrpModel::fit(self, data, rng, &Obs::disabled())
    }

    fn predict_roi(&self, x: &Matrix) -> Vec<f64> {
        DrpModel::predict_roi(self, x, &Obs::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::generator::{Population, RctGenerator};
    use datasets::CriteoLike;

    fn fitted(n: usize, epochs: usize, seed: u64) -> (DrpModel, RctDataset, RctDataset) {
        let gen = CriteoLike::new();
        let mut rng = Prng::seed_from_u64(seed);
        let train = gen.sample(n, Population::Base, &mut rng);
        let test = gen.sample(n, Population::Base, &mut rng);
        let mut m = DrpModel::new(DrpConfig {
            epochs,
            ..DrpConfig::default()
        });
        m.fit(&train, &mut rng, &Obs::disabled()).unwrap();
        (m, train, test)
    }

    #[test]
    fn predictions_live_in_unit_interval() {
        let (m, _, test) = fitted(3000, 10, 0);
        let preds = m.predict_roi(&test.x, &Obs::disabled());
        assert!(preds.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn ranks_roi_better_than_random_out_of_sample() {
        // Averaged over two seeds: single-seed AUCC margins on the gated
        // Criteo lookalike are within evaluation noise.
        let mut diff_sum = 0.0;
        for seed in [1u64, 2] {
            let (m, _, test) = fitted(15_000, 40, seed);
            let preds = m.predict_roi(&test.x, &Obs::disabled());
            let aucc = metrics::aucc_from_labels(&test, &preds, 20);
            let mut rng = Prng::seed_from_u64(seed + 100);
            let random: Vec<f64> = (0..test.len()).map(|_| rng.uniform()).collect();
            diff_sum += aucc - metrics::aucc_from_labels(&test, &random, 20);
        }
        assert!(diff_sum / 2.0 > 0.01, "mean DRP-over-random {diff_sum}");
    }

    #[test]
    fn correlates_with_true_roi() {
        let (m, _, test) = fitted(15_000, 40, 3);
        let preds = m.predict_roi(&test.x, &Obs::disabled());
        let truth = test.true_roi().unwrap();
        let corr = linalg::stats::pearson(&preds, &truth);
        assert!(corr > 0.3, "corr {corr}");
    }

    #[test]
    fn mc_roi_bounds_and_spread() {
        let (m, _, test) = fitted(2000, 10, 4);
        let mut rng = Prng::seed_from_u64(5);
        let stats = m.mc_roi(&test.x, 30, 1e-6, &mut rng, &Obs::disabled());
        assert!(stats.mean.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(stats.std.iter().all(|&s| s >= 1e-6));
        assert!(stats.std.iter().any(|&s| s > 1e-4), "dropout should spread");
    }

    #[test]
    fn more_training_lowers_loss() {
        let (short, _, _) = fitted(4000, 3, 6);
        let (long, _, _) = fitted(4000, 40, 6);
        assert!(long.final_loss().unwrap() < short.final_loss().unwrap());
    }

    #[test]
    #[should_panic(expected = "fit before predict")]
    fn predict_before_fit_panics() {
        let m = DrpModel::new(DrpConfig::default());
        let _ = m.predict_roi(&Matrix::zeros(1, 12), &Obs::disabled());
    }
}
