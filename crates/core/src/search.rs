//! Algorithm 2: binary search for the loss convergence point `roi*`.
//!
//! The shared-score DRP loss derivative `L'(s) = τ̄^c σ(s) − τ̄^r` is
//! increasing in `s` (convexity, given `τ̄^c > 0`), so its root — the
//! convergence point — is found by bisection over `roi = σ(s) ∈ (0, 1)`.
//! Assumption 5 then treats `roi* = σ(s*)` as the reference true ROI for
//! the conformal score.

use crate::loss::{mean_uplifts, shared_score_derivative};
use linalg::vector::logit;
use std::fmt;

/// Why the search could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// One of the treatment groups is missing from the calibration set.
    MissingGroup,
    /// The mean cost uplift is not positive, so the loss is not strictly
    /// convex and no interior convergence point exists (Assumption 4
    /// violated by this sample).
    NonPositiveCostUplift {
        /// The offending estimate.
        tau_c: f64,
    },
    /// The bisection tolerance is outside `(0, 0.5)`.
    InvalidTolerance {
        /// The offending tolerance.
        eps: f64,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::MissingGroup => {
                write!(f, "calibration set lacks a treatment group")
            }
            SearchError::NonPositiveCostUplift { tau_c } => write!(
                f,
                "mean cost uplift {tau_c} is not positive; loss has no interior minimum"
            ),
            SearchError::InvalidTolerance { eps } => {
                write!(f, "search tolerance {eps} is outside (0, 0.5)")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// Binary search for `roi*` on calibration labels (paper Algorithm 2).
///
/// `eps` bounds both the bracket width and the derivative magnitude at
/// early exit. The result is clamped to `(eps, 1 − eps)`: when the
/// empirical ratio `τ̄^r/τ̄^c` falls outside (0, 1) — possible in small
/// noisy samples even though Assumption 3 bounds the population value —
/// the search saturates at the nearest boundary.
///
/// The `obs` handle records the search: counter
/// `calibration.search_iterations` accumulates bisection steps, and one
/// `calibration.roi_star` event carries the result alongside the final
/// bracket `{roi_star, iterations, lo, hi}`. Errors emit nothing — the
/// caller decides how a failed search is reported (in the rDRP pipeline
/// it becomes a `calibration.degraded` event).
pub fn find_roi_star(
    t: &[u8],
    y_r: &[f64],
    y_c: &[f64],
    eps: f64,
    obs: &obs::Obs,
) -> Result<f64, SearchError> {
    if !(eps > 0.0 && eps < 0.5) {
        return Err(SearchError::InvalidTolerance { eps });
    }
    let n1 = t.iter().filter(|&&v| v == 1).count();
    if n1 == 0 || n1 == t.len() {
        return Err(SearchError::MissingGroup);
    }
    let (_, tau_c) = mean_uplifts(t, y_r, y_c);
    if tau_c <= 0.0 {
        return Err(SearchError::NonPositiveCostUplift { tau_c });
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let mut roi = 0.5;
    let mut iterations = 0usize;
    // |log2(1/eps)| + 1 iterations suffice (paper §IV-D); the loop guard
    // below mirrors Algorithm 2's `while |roi_r - roi_l| > eps`.
    while hi - lo > eps {
        let d = shared_score_derivative(logit(roi), t, y_r, y_c);
        iterations += 1;
        if d.abs() < eps {
            break;
        }
        if d > 0.0 {
            hi = roi;
        } else {
            lo = roi;
        }
        roi = 0.5 * (lo + hi);
    }
    let roi = roi.clamp(eps, 1.0 - eps);
    obs.counter("calibration.search_iterations", iterations as f64);
    obs.event(
        "calibration.roi_star",
        &[
            ("roi_star", roi.into()),
            ("iterations", iterations.into()),
            ("lo", lo.into()),
            ("hi", hi.into()),
        ],
    );
    Ok(roi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::random::Prng;

    /// Labels whose empirical ratio is exactly `ratio` (by construction).
    fn labels_with_ratio(ratio: f64, n: usize) -> (Vec<u8>, Vec<f64>, Vec<f64>) {
        // treated: y_c = 1 always, y_r = ratio (deterministic values are
        // fine; the derivative only uses group means).
        let mut t = Vec::new();
        let mut y_r = Vec::new();
        let mut y_c = Vec::new();
        for i in 0..n {
            let treated = i % 2 == 0;
            t.push(u8::from(treated));
            if treated {
                y_r.push(ratio);
                y_c.push(1.0);
            } else {
                y_r.push(0.0);
                y_c.push(0.0);
            }
        }
        (t, y_r, y_c)
    }

    #[test]
    fn recovers_known_ratio() {
        for &ratio in &[0.1, 0.25, 0.5, 0.73, 0.9] {
            let (t, y_r, y_c) = labels_with_ratio(ratio, 100);
            let roi = find_roi_star(&t, &y_r, &y_c, 1e-6, &obs::Obs::disabled()).unwrap();
            assert!((roi - ratio).abs() < 1e-4, "ratio {ratio}: got {roi}");
        }
    }

    #[test]
    fn saturates_outside_unit_interval() {
        // Empirical ratio > 1: revenue uplift exceeds cost uplift.
        let (t, mut y_r, y_c) = labels_with_ratio(0.5, 100);
        for (i, v) in y_r.iter_mut().enumerate() {
            if t[i] == 1 {
                *v = 2.0;
            }
        }
        let roi = find_roi_star(&t, &y_r, &y_c, 1e-4, &obs::Obs::disabled()).unwrap();
        assert!(roi > 0.99, "got {roi}");
        // Negative revenue uplift: saturates near 0.
        for (i, v) in y_r.iter_mut().enumerate() {
            if t[i] == 1 {
                *v = -1.0;
            }
        }
        let roi = find_roi_star(&t, &y_r, &y_c, 1e-4, &obs::Obs::disabled()).unwrap();
        assert!(roi < 0.01, "got {roi}");
    }

    #[test]
    fn matches_closed_form_on_random_rct() {
        let mut rng = Prng::seed_from_u64(0);
        for trial in 0..20 {
            let n = 500;
            let mut t = Vec::new();
            let mut y_r = Vec::new();
            let mut y_c = Vec::new();
            for _ in 0..n {
                let ti = u8::from(rng.bernoulli(0.5));
                t.push(ti);
                y_c.push(f64::from(rng.bernoulli(0.1 + 0.3 * f64::from(ti))));
                y_r.push(f64::from(rng.bernoulli(0.05 + 0.1 * f64::from(ti))));
            }
            let (tr, tc) = crate::loss::mean_uplifts(&t, &y_r, &y_c);
            if tc <= 0.0 {
                continue;
            }
            let closed = (tr / tc).clamp(1e-6, 1.0 - 1e-6);
            let roi = find_roi_star(&t, &y_r, &y_c, 1e-7, &obs::Obs::disabled()).unwrap();
            assert!(
                (roi - closed).abs() < 1e-4,
                "trial {trial}: search {roi} vs closed form {closed}"
            );
        }
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        let (t, y_r, y_c) = labels_with_ratio(0.5, 10);
        let all_treated = vec![1u8; 10];
        assert_eq!(
            find_roi_star(&all_treated, &y_r, &y_c, 1e-4, &obs::Obs::disabled()),
            Err(SearchError::MissingGroup)
        );
        // Zero cost uplift.
        let zero_c = vec![0.0; 10];
        assert!(matches!(
            find_roi_star(&t, &y_r, &zero_c, 1e-4, &obs::Obs::disabled()),
            Err(SearchError::NonPositiveCostUplift { .. })
        ));
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        // eps = 2^-20 needs at most ~21 halvings; verify convergence is
        // still exact to tolerance (indirect check on the loop bound).
        let (t, y_r, y_c) = labels_with_ratio(0.37, 64);
        let roi = find_roi_star(&t, &y_r, &y_c, 2f64.powi(-20), &obs::Obs::disabled()).unwrap();
        assert!((roi - 0.37).abs() < 1e-5);
    }

    #[test]
    fn bad_eps_is_a_typed_error() {
        let (t, y_r, y_c) = labels_with_ratio(0.5, 10);
        for bad in [0.7, 0.0, -1.0, f64::NAN] {
            assert!(matches!(
                find_roi_star(&t, &y_r, &y_c, bad, &obs::Obs::disabled()),
                Err(SearchError::InvalidTolerance { .. })
            ));
        }
    }
}
