//! End-to-end robustness: corrupted inputs and diverging optimizers must
//! surface as typed errors (or recover via rollback) — never as panics.

use datasets::generator::{Population, RctGenerator};
use datasets::CriteoLike;
use linalg::random::Prng;
use rdrp::{DegradedMode, DrpConfig, Rdrp, RdrpConfig};
use uplift::{FitError, RoiModel};

fn quick_config() -> RdrpConfig {
    RdrpConfig {
        drp: DrpConfig {
            epochs: 8,
            ..DrpConfig::default()
        },
        mc_passes: 10,
        ..RdrpConfig::default()
    }
}

#[test]
fn nan_features_are_a_typed_error_not_a_panic() {
    let gen = CriteoLike::new();
    let mut rng = Prng::seed_from_u64(0);
    let mut data = gen.sample(2000, Population::Base, &mut rng);
    data.x.set(17, 0, f64::NAN);
    let mut m = Rdrp::new(quick_config()).unwrap();
    let err = m.fit(&data, &mut rng).unwrap_err();
    assert!(matches!(err, FitError::InvalidData(_)), "{err:?}");
    assert!(err.to_string().contains("non-finite"), "{err}");
}

#[test]
fn nan_labels_are_a_typed_error_not_a_panic() {
    let gen = CriteoLike::new();
    let mut rng = Prng::seed_from_u64(1);
    let mut data = gen.sample(2000, Population::Base, &mut rng);
    data.y_r[3] = f64::NAN;
    data.y_c[999] = f64::INFINITY;
    let mut m = Rdrp::new(quick_config()).unwrap();
    let err = m.fit(&data, &mut rng).unwrap_err();
    assert!(matches!(err, FitError::InvalidData(_)), "{err:?}");
}

#[test]
fn nan_calibration_set_is_a_typed_error_not_a_panic() {
    let gen = CriteoLike::new();
    let mut rng = Prng::seed_from_u64(2);
    let train = gen.sample(2000, Population::Base, &mut rng);
    let mut cal = gen.sample(500, Population::Base, &mut rng);
    cal.x.set(0, 0, f64::NAN);
    let mut m = Rdrp::new(quick_config()).unwrap();
    // The DRP trains fine; the corruption is only seen when the MC
    // forward passes hit the calibration features and the conformal
    // scores go non-finite.
    let result = m.fit_with_calibration(&train, &cal, &mut rng, &obs::Obs::disabled());
    match result {
        Err(FitError::Calibration(_)) | Err(FitError::InvalidData(_)) => {}
        other => panic!("expected a typed calibration error, got {other:?}"),
    }
}

#[test]
fn diverging_learning_rate_errors_or_recovers_never_panics() {
    let gen = CriteoLike::new();
    let mut rng = Prng::seed_from_u64(3);
    let data = gen.sample(2000, Population::Base, &mut rng);
    // An absurd learning rate with gradient clipping disabled: the loss
    // explodes within an epoch. The trainer's sentinels must either roll
    // back and retry at a lower rate (Ok) or exhaust the retry budget
    // into TrainError::Diverged (Err) — both acceptable; a panic is not.
    let mut m = Rdrp::new(RdrpConfig {
        drp: DrpConfig {
            lr: 1e9,
            grad_clip: 0.0,
            epochs: 5,
            ..DrpConfig::default()
        },
        ..quick_config()
    })
    .unwrap();
    match m.fit(&data, &mut rng) {
        Ok(()) => {
            // Recovery path: the model must still predict finite scores.
            let scores = m.predict_roi(&data.x);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
        Err(FitError::Train(nn::TrainError::Diverged { attempts, .. })) => {
            assert_eq!(attempts, nn::TrainConfig::default().max_divergence_retries);
        }
        Err(other) => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn degenerate_uncertainty_end_to_end_through_the_roi_model_trait() {
    // mc_dropout = 0 makes every MC pass identical; the pipeline must
    // serve the plain DRP ranking with the machine-readable flag set.
    let gen = CriteoLike::new();
    let mut rng = Prng::seed_from_u64(4);
    let data = gen.sample(3000, Population::Base, &mut rng);
    let mut m = Rdrp::new(RdrpConfig {
        mc_dropout: 0.0,
        ..quick_config()
    })
    .unwrap();
    m.fit(&data, &mut rng).unwrap();
    assert_eq!(m.degraded(), Some(DegradedMode::DegenerateUncertainty));
    let test = gen.sample(400, Population::Base, &mut rng);
    let scores = m.predict_roi(&test.x);
    assert!(scores.iter().all(|s| s.is_finite()));
    assert_eq!(scores, m.drp().predict_roi(&test.x, &obs::Obs::disabled()));
}
