//! Coupon targeting on a food-delivery platform (Meituan-LIFT lookalike).
//!
//! ```sh
//! cargo run -p rdrp-examples --release --example coupon_targeting
//! ```
//!
//! The scenario of the paper's introduction: allocate coupons (binary
//! treatment) to maximize conversions per click-cost. Compares three ways
//! to rank customers — a classical two-phase method, plain DRP, and rDRP
//! — on the same budget, reporting AUCC and captured incremental revenue.

use datasets::generator::{Population, RctGenerator};
use datasets::MeituanLike;
use linalg::random::Prng;
use metrics::aucc_from_labels;
use rdrp::{greedy_allocate, DrpModel, Rdrp, RdrpConfig};
use uplift::{RoiModel, Tpm};

fn main() {
    let mut rng = Prng::seed_from_u64(99);
    let generator = MeituanLike::new();
    let train = generator.sample(12_000, Population::Base, &mut rng);
    let calibration = generator.sample(4_000, Population::Base, &mut rng);
    let test = generator.sample(10_000, Population::Base, &mut rng);
    println!(
        "Meituan-style coupon RCT: {} features, {} train rows",
        train.n_features(),
        train.len()
    );

    // Candidate rankers.
    let mut tpm = Tpm::xlearner();
    tpm.fit(&train, &mut rng)
        .expect("synthetic RCT data is well-formed");
    let tpm_scores = tpm.predict_roi(&test.x);

    let mut drp = DrpModel::new(RdrpConfig::default().drp);
    drp.fit(&train, &mut rng, &obs::Obs::disabled())
        .expect("synthetic RCT data is well-formed");
    let drp_scores = drp.predict_roi(&test.x, &obs::Obs::disabled());

    let mut rdrp = Rdrp::new(RdrpConfig::default()).expect("default config is valid");
    rdrp.fit_with_calibration(&train, &calibration, &mut rng, &obs::Obs::disabled())
        .expect("synthetic RCT data is well-formed");
    let rdrp_scores = rdrp.predict_scores(&test.x, &mut rng, &obs::Obs::disabled());

    // Evaluate rankings.
    println!("\nranking quality (AUCC, higher is better):");
    for (name, scores) in [
        ("TPM-XL", &tpm_scores),
        ("DRP", &drp_scores),
        ("rDRP", &rdrp_scores),
    ] {
        println!("  {name:<8} {:.4}", aucc_from_labels(&test, scores, 20));
    }

    // Spend the same coupon budget with each ranking and compare captured
    // incremental conversions (ground truth known for synthetic data).
    let costs = test.true_tau_c.clone().expect("synthetic ground truth");
    let truth_r = test.true_tau_r.as_ref().expect("ground truth");
    let budget = 0.25 * costs.iter().sum::<f64>();
    println!("\nbudgeted campaign (25% of total incremental cost):");
    for (name, scores) in [
        ("TPM-XL", &tpm_scores),
        ("DRP", &drp_scores),
        ("rDRP", &rdrp_scores),
    ] {
        let alloc = greedy_allocate(scores, &costs, budget);
        let captured: f64 = (0..test.len())
            .filter(|&i| alloc.treated[i])
            .map(|i| truth_r[i])
            .sum();
        println!(
            "  {name:<8} treats {:>5} users, captures {captured:>7.1} incremental conversions",
            alloc.n_treated
        );
    }
}
