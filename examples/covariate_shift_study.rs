//! Covariate-shift anatomy: what actually happens to DRP when the
//! deployment population drifts, and how rDRP's conformal machinery
//! reacts.
//!
//! ```sh
//! cargo run -p rdrp-examples --release --example covariate_shift_study
//! ```
//!
//! Demonstrates three diagnostics the library exposes:
//!  * the standardized-mean-difference shift meter,
//!  * conformal interval widths growing under uncertainty,
//!  * empirical coverage of the conformal guarantee (paper Eq. 4).

use conformal::empirical_coverage;
use datasets::generator::{Population, RctGenerator};
use datasets::shift::shift_magnitude;
use datasets::CriteoLike;
use linalg::random::Prng;
use metrics::aucc_from_labels;
use rdrp::{find_roi_star, Rdrp, RdrpConfig};

fn main() {
    let mut rng = Prng::seed_from_u64(5);
    let generator = CriteoLike::new();
    let train = generator.sample(12_000, Population::Base, &mut rng);

    println!("1. Measuring the shift");
    let base_sample = generator.sample(5_000, Population::Base, &mut rng);
    let shifted_sample = generator.sample(5_000, Population::Shifted, &mut rng);
    println!(
        "   base vs base    SMD: {:.3} (no shift)",
        shift_magnitude(&train, &base_sample).expect("matched feature spaces")
    );
    println!(
        "   base vs holiday SMD: {:.3} (covariate shift)",
        shift_magnitude(&train, &shifted_sample).expect("matched feature spaces")
    );

    println!("\n2. Fitting rDRP against each deployment population");
    for (label, population) in [
        ("matched", Population::Base),
        ("shifted", Population::Shifted),
    ] {
        let calibration = generator.sample(4_000, population, &mut rng);
        let test = generator.sample(8_000, population, &mut rng);
        let mut model = Rdrp::new(RdrpConfig::default()).expect("default config is valid");
        model
            .fit_with_calibration(&train, &calibration, &mut rng, &obs::Obs::disabled())
            .expect("synthetic RCT data is well-formed");
        let diag = model.diagnostics();

        let rdrp_scores = model.predict_scores(&test.x, &mut rng, &obs::Obs::disabled());
        let drp_scores = model.drp().predict_roi(&test.x, &obs::Obs::disabled());
        let intervals = model.predict_intervals(&test.x, &mut rng);
        let mean_width: f64 =
            intervals.iter().map(|iv| iv.width()).sum::<f64>() / intervals.len() as f64;

        // Eq. 4's guarantee is about covering the test population's loss
        // convergence point roi*.
        let roi_star_test =
            find_roi_star(&test.t, &test.y_r, &test.y_c, 1e-6, &obs::Obs::disabled())
                .expect("test RCT has both groups");
        let coverage = empirical_coverage(&intervals, &vec![roi_star_test; intervals.len()]);

        println!(
            "   {label:<8} q̂ = {:>7.2}  form = {:<16} mean C(x) width = {mean_width:.3}",
            diag.qhat,
            diag.selected_form.label()
        );
        println!(
            "            AUCC: DRP {:.4} vs rDRP {:.4}   coverage of roi* ({:.3}): {:.1}%",
            aucc_from_labels(&test, &drp_scores, 20),
            aucc_from_labels(&test, &rdrp_scores, 20),
            roi_star_test,
            100.0 * coverage
        );
    }
    println!(
        "\n(the conformal coverage stays ≥ 90% in both columns because the \
         calibration RCT always matches the deployment population — the \
         deployment recipe the paper prescribes)"
    );
}
