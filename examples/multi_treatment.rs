//! Multi-treatment campaigns via Divide and Conquer (paper §VI), plus
//! model persistence.
//!
//! ```sh
//! cargo run -p rdrp-examples --release --example multi_treatment
//! ```
//!
//! Three coupon face values compete for one budget. One rDRP is trained
//! per arm against the shared control group; the multiple-choice greedy
//! then assigns each customer at most one coupon. The per-arm models are
//! also saved/reloaded to show the deployment serialization path.

use datasets::generator::Population;
use datasets::multi::MultiCouponGenerator;
use linalg::random::Prng;
use rdrp::{mckp_allocate, DivideAndConquerRdrp, DrpConfig, Persist, Rdrp, RdrpConfig};
use uplift::RoiModel;

fn main() {
    let mut rng = Prng::seed_from_u64(21);
    let generator = MultiCouponGenerator::new(3);
    let train = generator.sample(9_000, Population::Base, &mut rng);
    let calibration = generator.sample(3_000, Population::Base, &mut rng);
    let customers = generator.sample(4_000, Population::Base, &mut rng);
    println!(
        "multi-coupon RCT: {} arms + control, {} training rows",
        train.n_levels,
        train.len()
    );

    let config = RdrpConfig {
        drp: DrpConfig {
            epochs: 25,
            ..DrpConfig::default()
        },
        mc_passes: 25,
        ..RdrpConfig::default()
    };
    let mut dc = DivideAndConquerRdrp::new(config, 3).expect("config is valid");
    dc.fit(&train, &calibration, &mut rng, &obs::Obs::disabled())
        .expect("synthetic RCT data is well-formed");
    for k in 1..=3u8 {
        let d = dc.arm(k).diagnostics();
        println!(
            "  arm {k}: roi* = {:?}, q̂ = {:.2}, form = {}",
            d.roi_star.map(|v| (v * 1000.0).round() / 1000.0),
            d.qhat,
            d.selected_form.label()
        );
    }

    // Persist arm 2's model and prove the roundtrip is exact.
    let path = std::env::temp_dir().join("rdrp_multi_arm2.json");
    dc.arm(2).save(&path).expect("save model");
    let reloaded = Rdrp::load(&path).expect("load model");
    let before = dc.arm(2).predict_roi(&customers.x);
    let after = reloaded.predict_roi(&customers.x);
    assert_eq!(before, after, "persistence must be bit-exact");
    println!(
        "\narm-2 model saved to {} and reloaded bit-exactly",
        path.display()
    );
    let _ = std::fs::remove_file(path);

    // Allocate one budget across all arms. Comparable (quantile-matched)
    // scores put every arm on the common ROI scale — raw calibrated
    // scores would let the largest-magnitude form monopolize the budget.
    let scores = dc.predict_comparable_scores(&customers.x, &mut rng, &obs::Obs::disabled());
    let costs = customers
        .true_tau_c
        .clone()
        .expect("synthetic ground truth");
    let values = customers
        .true_tau_r
        .clone()
        .expect("synthetic ground truth");
    let budget = 0.25 * costs[0].iter().sum::<f64>();
    let alloc = mckp_allocate(&scores, &costs, budget).expect("allocator inputs are well-formed");
    println!(
        "\nbudget {budget:.1}: treated {} of {} customers",
        alloc.n_treated,
        customers.len()
    );
    for k in 1..=3u8 {
        let n = alloc.assigned.iter().filter(|a| **a == Some(k)).count();
        println!("  coupon arm {k}: {n} customers");
    }
    let captured: f64 = alloc
        .assigned
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|k| values[(k - 1) as usize][i]))
        .sum();
    println!("expected incremental conversions captured: {captured:.1}");
}
