//! Incentivized-advertising budget allocation with a live A/B test
//! (Alibaba-LIFT lookalike + the Fig. 6 simulator).
//!
//! ```sh
//! cargo run -p rdrp-examples --release --example ad_budget_allocation
//! ```
//!
//! Simulates the paper's online deployment: a platform rewards viewers
//! for watching ads, budget is finite, and three arms (random / DRP /
//! rDRP) allocate it for five days. Realized ad revenue is drawn from the
//! true potential-outcome law, so arm differences are causal.

use abtest::{run_ab_test, AbTestConfig};
use datasets::{AlibabaLike, Setting};
use linalg::random::Prng;
use rdrp::{DrpConfig, RdrpConfig};

fn main() {
    let generator = AlibabaLike::new();
    let config = AbTestConfig {
        train_sufficient: 12_000,
        insufficient_fraction: 0.1,
        calibration: 4_000,
        users_per_day: 6_000,
        days: 5,
        budget_fraction: 0.3,
        rdrp: RdrpConfig {
            drp: DrpConfig {
                epochs: 30,
                dropout: 0.2,
                ..DrpConfig::default()
            },
            ..RdrpConfig::default()
        },
        ..AbTestConfig::default()
    };
    println!(
        "incentivized-advertising A/B test: {} viewers/day/arm, {} days",
        config.users_per_day, config.days
    );
    for setting in [Setting::SuNo, Setting::InCo] {
        let mut rng = Prng::seed_from_u64(11);
        let result = run_ab_test(
            generator.model(),
            setting,
            &config,
            &mut rng,
            &obs::Obs::disabled(),
        )
        .expect("simulated A/B test config and data are valid");
        println!("\nsetting {setting} — realized daily ad revenue:");
        println!("  day | random |    DRP |   rDRP");
        for (d, day) in result.daily.iter().enumerate() {
            println!(
                "   {:>2} | {:>6.0} | {:>6.0} | {:>6.0}",
                d + 1,
                day.random,
                day.drp,
                day.rdrp
            );
        }
        println!(
            "  lift over random: DRP {:+.2}%, rDRP {:+.2}%",
            result.drp_lift_pct, result.rdrp_lift_pct
        );
    }
    println!(
        "\n(the paper's Fig. 6 shape: both arms beat random; rDRP's edge \
         over DRP grows when training data is scarce or shifted)"
    );
}
