//! Quickstart: train rDRP on a synthetic coupon RCT and solve C-BTAP.
//!
//! ```sh
//! cargo run -p rdrp-examples --release --example quickstart
//! ```
//!
//! Walks the full happy path in ~30 lines of user code:
//!  1. sample an RCT training set and a fresh calibration RCT,
//!  2. fit rDRP (Algorithm 4),
//!  3. score a test population and inspect prediction intervals,
//!  4. spend a budget with the greedy allocator (Algorithm 1).

use datasets::generator::{Population, RctGenerator};
use datasets::CriteoLike;
use linalg::random::Prng;
use rdrp::{greedy_allocate, Rdrp, RdrpConfig};

fn main() {
    let mut rng = Prng::seed_from_u64(7);
    let generator = CriteoLike::new();

    // 1. Data: a historical training RCT and a fresh calibration RCT.
    let train = generator.sample(10_000, Population::Base, &mut rng);
    let calibration = generator.sample(3_000, Population::Base, &mut rng);
    let customers = generator.sample(5_000, Population::Base, &mut rng);
    println!(
        "train: {} rows ({} treated), calibration: {} rows",
        train.len(),
        train.n_treated(),
        calibration.len()
    );

    // 2. Fit rDRP.
    let mut model = Rdrp::new(RdrpConfig::default()).expect("default config is valid");
    model
        .fit_with_calibration(&train, &calibration, &mut rng, &obs::Obs::disabled())
        .expect("synthetic RCT data is well-formed");
    let diag = model.diagnostics();
    println!(
        "calibrated: roi* = {:?}, q̂ = {:.3}, selected form = {}",
        diag.roi_star,
        diag.qhat,
        diag.selected_form.label()
    );

    // 3. Score the deployment population; look at a few intervals.
    let scores = model.predict_scores(&customers.x, &mut rng, &obs::Obs::disabled());
    let intervals = model.predict_intervals(&customers.x, &mut rng);
    println!("\nfirst five customers:");
    for i in 0..5 {
        println!(
            "  score {:.4}   90% ROI interval [{:.3}, {:.3}]",
            scores[i], intervals[i].lo, intervals[i].hi
        );
    }

    // 4. Spend 30% of the total expected incremental cost.
    let costs = customers
        .true_tau_c
        .clone()
        .expect("synthetic ground truth");
    let budget = 0.3 * costs.iter().sum::<f64>();
    let allocation = greedy_allocate(&scores, &costs, budget);
    println!(
        "\nallocated treatment to {} of {} customers (spent {:.1} of budget {:.1})",
        allocation.n_treated,
        customers.len(),
        allocation.spent,
        budget
    );

    // Sanity: the realized ROI of the treated set should beat random.
    let truth_r = customers.true_tau_r.as_ref().expect("ground truth");
    let value: f64 = (0..customers.len())
        .filter(|&i| allocation.treated[i])
        .map(|i| truth_r[i])
        .sum();
    println!(
        "expected incremental revenue captured: {value:.1} (ROI of spend: {:.3})",
        value / allocation.spent
    );
}
