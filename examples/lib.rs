//! Placeholder library target; the examples live alongside as `[[example]]` binaries.
